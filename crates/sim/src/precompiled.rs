//! Circuits lowered once into a simulation-ready form, with optional gate
//! fusion.
//!
//! `NoisySimulator` historically re-derived everything per shot: each
//! trajectory converted every op's `CMatrix` into its `Mat2`/`Mat4` kernel and
//! rebuilt (and completeness-checked) every Kraus channel from the calibration
//! data. Trajectory sampling runs thousands of shots over the same circuit, so
//! that work was repeated ~shots× for no benefit.
//!
//! A [`PrecompiledCircuit`] performs that lowering exactly once:
//!
//! * every unitary is converted to its stack-allocated [`Mat2`]/[`Mat4`] form,
//! * every op's depolarizing channel and per-qubit relaxation [`Kraus1q`]
//!   channels are built (and completeness-checked by
//!   [`KrausChannel::new`](crate::KrausChannel::new)) up front,
//! * readout-error probabilities are resolved into a flat per-qubit table.
//!
//! # Gate fusion
//!
//! Under [`FusionPolicy::Safe`] the lowering additionally **fuses** runs of
//! adjacent ops into single kernels before any trajectory runs: consecutive
//! one-qubit gates on the same qubit multiply into one [`Mat2`], one-qubit
//! gates absorb into an adjacent two-qubit gate on their qubit (embedded via
//! `kron`), and consecutive two-qubit gates on the same pair (either
//! orientation) multiply into one [`Mat4`]. Ops separated only by gates on
//! disjoint qubits count as adjacent — disjoint unitaries commute — so a
//! layered circuit's rotation layer fuses into the entangler layer that
//! follows it. A `Mat4` product costs ~74 ns,
//! while one amplitude sweep costs O(2^n) — fusing `k` ops amortizes `k` full
//! state sweeps into one, which is what keeps large-register simulation
//! compute-bound instead of memory-bound.
//!
//! Under [`FusionPolicy::Safe`], fusion never crosses an RNG-consuming noise
//! channel: an op can only be fused *into a later op* when its own attached
//! channels are absent or identity (identity channels consume no randomness).
//! On the ideal path all channels are empty, so fusion is unrestricted; on the
//! noisy path trajectory semantics and the RNG consumption order are preserved
//! exactly, which is what makes `Safe`-fused counts bit-identical to unfused
//! runs.
//!
//! [`FusionPolicy::Aggressive`] additionally fuses *across* noise channels by
//! carrying them forward: when an op with channels is absorbed into a later
//! kernel `U`, each of its channels `{K_i}` is conjugated into `{U K_i U†}`
//! and re-attached after the fused kernel. Conjugation commutes a channel past
//! a unitary exactly — `‖U K U† (U|ψ⟩)‖ = ‖K|ψ⟩‖` for every operator, so both
//! the per-branch probabilities and the post-branch states are unchanged — and
//! adjacent carried channels on the same target are composed
//! ([`KrausChannel::then`](crate::KrausChannel::then), completeness re-checked
//! on construction) to bound the per-kernel channel count. Noisy circuits
//! therefore fuse as deeply as ideal ones. The trade: the *number and order*
//! of RNG draws changes, so Aggressive counts are not bit-identical to `Safe`
//! counts — they are equal in distribution, which the `verify` crate's TVD
//! harness checks statistically (see `verify::distribution`).
//!
//! Both the Monte-Carlo engine ([`crate::engine`]) and the exact
//! density-matrix simulator ([`crate::DensityMatrix::evolve`]) consume the
//! same precompiled (and fused) ops, so the two validation paths cannot drift
//! apart.

use circuit::{Circuit, OpKind, QubitId};
use qmath::{Mat2, Mat4};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::channels::{ArityChannel, Kraus1q, Kraus2q};
use crate::noise_model::NoiseModel;
use crate::statevector::StateVector;

/// How aggressively [`PrecompiledCircuit`] coalesces adjacent ops into single
/// kernels before simulation.
///
/// `Safe` keeps noisy counts bit-identical to the unfused lowering;
/// `Aggressive` carries noise channels across fused kernels (conjugating their
/// Kraus sets), trading bit-identity for distribution-identity so noisy
/// circuits fuse as deeply as ideal ones:
///
/// ```
/// use circuit::{Circuit, Operation};
/// use device::DeviceModel;
/// use qmath::RngSeed;
/// use sim::{FusionPolicy, NoiseModel, PrecompiledCircuit};
///
/// let mut c = Circuit::new(2);
/// c.push(Operation::h(0));
/// c.push(Operation::cnot(0, 1));
/// c.measure_all();
/// let noise = NoiseModel::from_device(&DeviceModel::aspen8(RngSeed(1)));
///
/// let safe = PrecompiledCircuit::with_fusion(&c, &noise, FusionPolicy::Safe);
/// let aggressive = PrecompiledCircuit::with_fusion(&c, &noise, FusionPolicy::Aggressive);
/// assert_eq!(safe.fused_ops(), 0); // calibration noise blocks every Safe fusion
/// assert_eq!(aggressive.fused_ops(), 1); // the H fuses across its noise into the CNOT
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FusionPolicy {
    /// No fusion: one lowered op per circuit op (the pre-fusion behaviour).
    Off,
    /// Fuse adjacent ops whenever no RNG-consuming channel sits between them.
    /// Trajectory semantics and RNG consumption are preserved exactly, so
    /// counts stay bit-identical to unfused runs; on noiseless circuits this
    /// is unrestricted fusion. The execution-engine default.
    #[default]
    Safe,
    /// Fuse across noise channels by conjugating their Kraus sets past the
    /// fused kernel and composing adjacent same-target channels. Counts are
    /// equal to [`FusionPolicy::Safe`] in distribution but not bit-identical
    /// (the RNG stream differs); the engine's `validate` mode checks the
    /// equivalence statistically with a TVD bound instead of bit-identity.
    Aggressive,
}

/// The unitary part of a lowered operation.
#[derive(Debug, Clone, PartialEq)]
pub enum PrecompiledKind {
    /// A single-qubit unitary, already converted to its 2×2 kernel.
    Unitary1Q {
        /// The stack-allocated gate matrix.
        matrix: Mat2,
        /// Target qubit.
        qubit: QubitId,
    },
    /// A two-qubit unitary, already converted to its 4×4 kernel.
    Unitary2Q {
        /// The stack-allocated gate matrix (`q0` is the most significant
        /// qubit of the matrix).
        matrix: Mat4,
        /// First (most significant) qubit.
        q0: QubitId,
        /// Second qubit.
        q1: QubitId,
    },
    /// A measurement or barrier: no unitary, only the attached noise.
    Silent,
}

/// A depolarizing channel attached to a lowered op, carrying its own target
/// qubits.
///
/// Before gate fusion the channel's targets always coincided with the op's
/// qubits, so [`ArityChannel`] alone was enough. A fused op can carry a
/// channel narrower than its kernel (a 1Q gate with 1Q noise absorbed into a
/// 2Q kernel keeps its 1Q channel), so the targets are stored explicitly.
#[derive(Debug, Clone, PartialEq)]
pub enum AttachedChannel {
    /// A single-qubit channel.
    One {
        /// The Kraus channel.
        channel: Kraus1q,
        /// The qubit it acts on.
        qubit: QubitId,
    },
    /// A two-qubit channel (`q0` is the most significant qubit).
    Two {
        /// The Kraus channel.
        channel: Kraus2q,
        /// First (most significant) qubit.
        q0: QubitId,
        /// Second qubit.
        q1: QubitId,
    },
}

impl AttachedChannel {
    /// Builds the attachment from an arity-matched channel and the op's
    /// qubits.
    fn from_arity(channel: ArityChannel, qubits: &[QubitId]) -> Self {
        match (channel, qubits) {
            (ArityChannel::One(channel), [q]) => AttachedChannel::One { channel, qubit: *q },
            (ArityChannel::Two(channel), [q0, q1]) => AttachedChannel::Two {
                channel,
                q0: *q0,
                q1: *q1,
            },
            (channel, qubits) => unreachable!(
                "noise_for returned a dim-{} channel for a {}-qubit op",
                match channel {
                    ArityChannel::One(_) => 2,
                    ArityChannel::Two(_) => 4,
                },
                qubits.len()
            ),
        }
    }

    /// True when the channel consumes no randomness when applied.
    pub fn is_identity(&self) -> bool {
        match self {
            AttachedChannel::One { channel, .. } => channel.is_identity(),
            AttachedChannel::Two { channel, .. } => channel.is_identity(),
        }
    }
}

/// One circuit operation lowered to its simulation-ready form: the unitary
/// kernel plus the prebuilt noise channels that follow it.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecompiledOp {
    /// The unitary kernel (or [`PrecompiledKind::Silent`]).
    pub kind: PrecompiledKind,
    /// Channels carried forward from earlier ops by
    /// [`FusionPolicy::Aggressive`], already conjugated past this op's kernel.
    /// Applied directly after the kernel, before
    /// [`depolarizing`](PrecompiledOp::depolarizing). Always empty under
    /// [`FusionPolicy::Off`] and [`FusionPolicy::Safe`].
    pub carried: Vec<AttachedChannel>,
    /// Depolarizing channel with its target qubits, `None` when noiseless.
    pub depolarizing: Option<AttachedChannel>,
    /// Per-qubit thermal-relaxation channels for the op's duration.
    pub relaxation: Vec<(QubitId, Kraus1q)>,
}

impl PrecompiledOp {
    /// True when applying this op draws no randomness: its carried and
    /// depolarizing channels are absent or identity and every relaxation
    /// channel is identity. Fusing a *later* op into such an op cannot disturb
    /// the RNG stream.
    fn consumes_no_rng(&self) -> bool {
        self.carried.iter().all(|c| c.is_identity())
            && self.depolarizing.as_ref().is_none_or(|c| c.is_identity())
            && self
                .relaxation
                .iter()
                .all(|(_, channel)| channel.is_identity())
    }
}

/// A circuit lowered once into simulation-ready ops.
///
/// Build one with [`PrecompiledCircuit::new`] (noisy) or
/// [`PrecompiledCircuit::ideal`] (no noise) — both unfused, matching the
/// historical lowering bit for bit — or with the
/// [`with_fusion`](PrecompiledCircuit::with_fusion) /
/// [`ideal_with_fusion`](PrecompiledCircuit::ideal_with_fusion) variants to
/// coalesce adjacent ops first (see the [module docs](crate::precompiled)).
/// Then run as many trajectories against it as needed — no per-shot matrix
/// conversion or channel construction remains.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecompiledCircuit {
    num_qubits: usize,
    ops: Vec<PrecompiledOp>,
    /// Per-qubit readout flip probability (all zeros when disabled).
    readout_error: Vec<f64>,
    /// The fusion policy the circuit was lowered under.
    fusion: FusionPolicy,
    /// Number of source ops eliminated by fusion (0 under
    /// [`FusionPolicy::Off`]).
    fused_ops: usize,
}

impl PrecompiledCircuit {
    /// Lowers `circuit` under `noise` without fusion, building every Kraus
    /// channel exactly once.
    ///
    /// # Panics
    /// Panics if an operation carries a matrix of the wrong dimension (which
    /// [`circuit::Operation`] construction already prevents).
    pub fn new(circuit: &Circuit, noise: &NoiseModel) -> Self {
        PrecompiledCircuit::with_fusion(circuit, noise, FusionPolicy::Off)
    }

    /// Lowers `circuit` under `noise` with the given [`FusionPolicy`].
    pub fn with_fusion(circuit: &Circuit, noise: &NoiseModel, fusion: FusionPolicy) -> Self {
        let ops = circuit
            .iter()
            .map(|op| {
                let op_noise = noise.noise_for(op);
                PrecompiledOp {
                    kind: lower_kind(op),
                    carried: Vec::new(),
                    depolarizing: op_noise
                        .depolarizing
                        .map(|c| AttachedChannel::from_arity(c, op.qubits())),
                    relaxation: op_noise.relaxation,
                }
            })
            .collect();
        let readout_error = (0..circuit.num_qubits())
            .map(|q| noise.readout_error(q))
            .collect();
        PrecompiledCircuit::finish(circuit.num_qubits(), ops, readout_error, fusion)
    }

    /// Lowers `circuit` with no noise attached and no fusion: trajectories are
    /// then deterministic and only measurement sampling consumes randomness.
    pub fn ideal(circuit: &Circuit) -> Self {
        PrecompiledCircuit::ideal_with_fusion(circuit, FusionPolicy::Off)
    }

    /// Lowers `circuit` with no noise attached and the given [`FusionPolicy`]
    /// (with no channels anywhere, [`FusionPolicy::Safe`] fusion is
    /// unrestricted).
    pub fn ideal_with_fusion(circuit: &Circuit, fusion: FusionPolicy) -> Self {
        let ops = circuit
            .iter()
            .map(|op| PrecompiledOp {
                kind: lower_kind(op),
                carried: Vec::new(),
                depolarizing: None,
                relaxation: Vec::new(),
            })
            .collect();
        let readout_error = vec![0.0; circuit.num_qubits()];
        PrecompiledCircuit::finish(circuit.num_qubits(), ops, readout_error, fusion)
    }

    /// Applies the fusion policy to freshly lowered ops and assembles the
    /// circuit.
    fn finish(
        num_qubits: usize,
        ops: Vec<PrecompiledOp>,
        readout_error: Vec<f64>,
        fusion: FusionPolicy,
    ) -> Self {
        let (ops, fused_ops) = match fusion {
            FusionPolicy::Off => (ops, 0),
            FusionPolicy::Safe => fuse_ops(ops, false),
            FusionPolicy::Aggressive => fuse_ops(ops, true),
        };
        PrecompiledCircuit {
            num_qubits,
            ops,
            readout_error,
            fusion,
            fused_ops,
        }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The lowered operations, in circuit order.
    pub fn ops(&self) -> &[PrecompiledOp] {
        &self.ops
    }

    /// Per-qubit readout flip probabilities.
    pub fn readout_error(&self) -> &[f64] {
        &self.readout_error
    }

    /// The fusion policy the circuit was lowered under.
    pub fn fusion(&self) -> FusionPolicy {
        self.fusion
    }

    /// Number of source ops eliminated by gate fusion (each one an amplitude
    /// sweep a trajectory no longer pays for).
    pub fn fused_ops(&self) -> usize {
        self.fused_ops
    }

    /// True when no stochastic noise is attached anywhere: no depolarizing or
    /// relaxation channels and zero readout error. Trajectories of a noiseless
    /// circuit are deterministic, so the engine evolves the state once and
    /// only samples measurements per shot.
    pub fn is_noiseless(&self) -> bool {
        self.readout_error.iter().all(|&p| p == 0.0)
            && self.ops.iter().all(|op| op.consumes_no_rng())
    }

    /// Runs one noisy trajectory from `|0…0⟩` and returns the (normalized)
    /// final state. Consumes randomness only for the Kraus channels that are
    /// actually attached.
    pub fn run_trajectory<R: Rng + ?Sized>(&self, rng: &mut R) -> StateVector {
        self.run_trajectory_threaded(rng, 1)
    }

    /// [`run_trajectory`](PrecompiledCircuit::run_trajectory) with each
    /// amplitude sweep split across up to `threads` worker threads (see
    /// [`StateVector::apply_one_qubit_threaded`]). Bit-identical to the serial
    /// trajectory for any thread count.
    pub fn run_trajectory_threaded<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        threads: usize,
    ) -> StateVector {
        self.run_trajectory_with(rng, threads, crate::statevector::PARALLEL_SWEEP_MIN_QUBITS)
    }

    /// [`run_trajectory_threaded`](PrecompiledCircuit::run_trajectory_threaded)
    /// with an explicit parallel-sweep threshold (see
    /// [`StateVector::apply_one_qubit_with`]). Scheduling only — bit-identical
    /// for any `(threads, min_parallel_qubits)` pair.
    pub fn run_trajectory_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        threads: usize,
        min_parallel_qubits: usize,
    ) -> StateVector {
        let mut state = StateVector::zero_state(self.num_qubits);
        for op in &self.ops {
            match &op.kind {
                PrecompiledKind::Unitary1Q { matrix, qubit } => {
                    state.apply_one_qubit_with(matrix, *qubit, threads, min_parallel_qubits);
                }
                PrecompiledKind::Unitary2Q { matrix, q0, q1 } => {
                    state.apply_two_qubit_with(matrix, *q0, *q1, threads, min_parallel_qubits);
                }
                PrecompiledKind::Silent => {}
            }
            for carried in &op.carried {
                match carried {
                    AttachedChannel::One { channel, qubit } => {
                        apply_channel_1q(&mut state, channel, *qubit, rng);
                    }
                    AttachedChannel::Two { channel, q0, q1 } => {
                        apply_channel_2q(&mut state, channel, *q0, *q1, rng);
                    }
                }
            }
            match &op.depolarizing {
                Some(AttachedChannel::One { channel, qubit }) => {
                    apply_channel_1q(&mut state, channel, *qubit, rng);
                }
                Some(AttachedChannel::Two { channel, q0, q1 }) => {
                    apply_channel_2q(&mut state, channel, *q0, *q1, rng);
                }
                None => {}
            }
            for (q, channel) in &op.relaxation {
                apply_channel_1q(&mut state, channel, *q, rng);
            }
        }
        state
    }

    /// Runs one complete shot: trajectory, measurement sample, readout error.
    /// Randomness is consumed in the same order as the historical
    /// `NoisySimulator::run` path, so a per-shot seeded RNG reproduces its
    /// results bit for bit.
    pub fn sample_shot<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_shot_threaded(rng, 1)
    }

    /// [`sample_shot`](PrecompiledCircuit::sample_shot) with amplitude-sweep
    /// parallelism (same RNG stream, bit-identical outcome for any thread
    /// count).
    pub fn sample_shot_threaded<R: Rng + ?Sized>(&self, rng: &mut R, threads: usize) -> usize {
        self.sample_shot_with(rng, threads, crate::statevector::PARALLEL_SWEEP_MIN_QUBITS)
    }

    /// [`sample_shot_threaded`](PrecompiledCircuit::sample_shot_threaded) with
    /// an explicit parallel-sweep threshold (scheduling only — bit-identical
    /// for any `(threads, min_parallel_qubits)` pair).
    pub fn sample_shot_with<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        threads: usize,
        min_parallel_qubits: usize,
    ) -> usize {
        let state = self.run_trajectory_with(rng, threads, min_parallel_qubits);
        let outcome = state.sample_measurement(rng);
        self.apply_readout_error(outcome, rng)
    }

    /// Flips each measured bit independently with its readout-error
    /// probability.
    pub fn apply_readout_error<R: Rng + ?Sized>(&self, outcome: usize, rng: &mut R) -> usize {
        let mut noisy = outcome;
        for (q, &p) in self.readout_error.iter().enumerate() {
            if p > 0.0 && rng.gen_bool(p) {
                noisy ^= 1 << (self.num_qubits - 1 - q);
            }
        }
        noisy
    }
}

/// Stack-allocates a 1Q op's matrix. `Operation` construction shape-checks
/// every unitary, so the conversion is infallible for circuit-borne matrices;
/// the panic merely documents that invariant at the sim boundary.
pub(crate) fn op_mat2(matrix: &qmath::CMatrix) -> Mat2 {
    Mat2::try_from(matrix).expect("1Q operation carries a 2x2 matrix")
}

/// Stack-allocates a 2Q op's matrix (see [`op_mat2`]).
pub(crate) fn op_mat4(matrix: &qmath::CMatrix) -> Mat4 {
    Mat4::try_from(matrix).expect("2Q operation carries a 4x4 matrix")
}

/// Converts one circuit operation's unitary into its stack-allocated kernel —
/// the single lowering rule shared by the noisy and ideal constructors.
fn lower_kind(op: &circuit::Operation) -> PrecompiledKind {
    match op.kind() {
        OpKind::Unitary1Q { matrix, .. } => PrecompiledKind::Unitary1Q {
            matrix: op_mat2(matrix),
            qubit: op.qubits()[0],
        },
        OpKind::Unitary2Q { matrix, .. } => PrecompiledKind::Unitary2Q {
            matrix: op_mat4(matrix),
            q0: op.qubits()[0],
            q1: op.qubits()[1],
        },
        OpKind::Measure | OpKind::Barrier => PrecompiledKind::Silent,
    }
}

/// Reorders a two-qubit kernel defined on `(q1, q0)` into the equivalent
/// kernel on `(q0, q1)` by swapping the tensor factors:
/// `out[(i, j)] = m[(perm(i), perm(j))]` with `perm` exchanging the two bits
/// of the 2-bit index.
fn swap_tensor_factors(m: &Mat4) -> Mat4 {
    const PERM: [usize; 4] = [0, 2, 1, 3];
    Mat4::from_fn(|r, c| m[(PERM[r], PERM[c])])
}

/// Embeds a one-qubit kernel acting on `q` into the 4×4 space of the ordered
/// pair `(q0, q1)` (`q0` is the most significant qubit).
///
/// # Panics
/// Panics if `q` is in neither slot (callers check adjacency first).
fn embed_in_pair(m: &Mat2, q: QubitId, q0: QubitId, q1: QubitId) -> Mat4 {
    if q == q0 {
        m.kron(&Mat2::identity())
    } else {
        assert_eq!(q, q1, "qubit not in the target pair");
        Mat2::identity().kron(m)
    }
}

/// Attempts to combine the kernels of `prev` (applied first) and `cur`
/// (applied second) into one kernel; `None` when they are not fusable
/// (disjoint qubits, a partial pair overlap, or a Silent op).
fn combine_kinds(prev: &PrecompiledKind, cur: &PrecompiledKind) -> Option<PrecompiledKind> {
    use PrecompiledKind::{Silent, Unitary1Q, Unitary2Q};
    match (prev, cur) {
        (
            Unitary1Q {
                matrix: a,
                qubit: qa,
            },
            Unitary1Q {
                matrix: b,
                qubit: qb,
            },
        ) if qa == qb => Some(Unitary1Q {
            matrix: *b * *a,
            qubit: *qa,
        }),
        (
            Unitary1Q {
                matrix: a,
                qubit: qa,
            },
            Unitary2Q { matrix: b, q0, q1 },
        ) if qa == q0 || qa == q1 => Some(Unitary2Q {
            matrix: *b * embed_in_pair(a, *qa, *q0, *q1),
            q0: *q0,
            q1: *q1,
        }),
        (
            Unitary2Q { matrix: a, q0, q1 },
            Unitary1Q {
                matrix: b,
                qubit: qb,
            },
        ) if qb == q0 || qb == q1 => Some(Unitary2Q {
            matrix: embed_in_pair(b, *qb, *q0, *q1) * *a,
            q0: *q0,
            q1: *q1,
        }),
        (
            Unitary2Q {
                matrix: a,
                q0: p0,
                q1: p1,
            },
            Unitary2Q { matrix: b, q0, q1 },
        ) if (q0, q1) == (p0, p1) => Some(Unitary2Q {
            matrix: *b * *a,
            q0: *p0,
            q1: *p1,
        }),
        (
            Unitary2Q {
                matrix: a,
                q0: p0,
                q1: p1,
            },
            Unitary2Q { matrix: b, q0, q1 },
        ) if (q0, q1) == (p1, p0) => Some(Unitary2Q {
            matrix: swap_tensor_factors(b) * *a,
            q0: *p0,
            q1: *p1,
        }),
        (_, Silent) | (Silent, _) => None,
        _ => None,
    }
}

/// The qubits a kernel touches, or `None` for [`PrecompiledKind::Silent`].
fn kind_qubits(kind: &PrecompiledKind) -> Option<(QubitId, Option<QubitId>)> {
    match kind {
        PrecompiledKind::Unitary1Q { qubit, .. } => Some((*qubit, None)),
        PrecompiledKind::Unitary2Q { q0, q1, .. } => Some((*q0, Some(*q1))),
        PrecompiledKind::Silent => None,
    }
}

/// True when the qubit set `(a, b)` shares no qubit with `set`.
fn disjoint_from(set: &[QubitId], (a, b): (QubitId, Option<QubitId>)) -> bool {
    !set.contains(&a) && b.is_none_or(|b| !set.contains(&b))
}

/// True when two kernel qubit sets share a qubit.
fn qubits_overlap(a: (QubitId, Option<QubitId>), b: (QubitId, Option<QubitId>)) -> bool {
    let contains = |set: (QubitId, Option<QubitId>), q: QubitId| set.0 == q || set.1 == Some(q);
    contains(a, b.0) || b.1.is_some_and(|q| contains(a, q))
}

/// The greedy fusion pass.
///
/// For each incoming op the pass scans backward through the output for an op
/// touching its qubits that can legally move forward to it: every op in
/// between must commute with the candidate, which the scan tracks as the
/// `blocked` set of qubits touched since (disjoint unitaries commute, so
/// fusing across them is exact — this is what lets a layered circuit's
/// rotation layer fuse into the entangler layer that follows it, even with
/// other entanglers in between). The scan stops at any op that draws
/// randomness and at measurements and barriers; a candidate whose qubits
/// intersect `blocked` (or whose kernel shape cannot combine) is itself added
/// to `blocked` and the scan continues deeper.
///
/// The fused op keeps the *later* op's channels (under `Safe` the earlier
/// op's identity channels are dropped — they consumed no RNG), so the channel
/// application order of a trajectory is unchanged. With `aggressive` set, the
/// scan no longer stops at RNG-consuming ops: an absorbed op's real channels
/// are conjugated past the absorbing kernel ([`carry_channels`]) and prepended
/// to its carried list. Returns the fused list and the number of ops
/// eliminated.
fn fuse_ops(ops: Vec<PrecompiledOp>, aggressive: bool) -> (Vec<PrecompiledOp>, usize) {
    let mut out: Vec<PrecompiledOp> = Vec::with_capacity(ops.len());
    let mut fused = 0usize;
    for op in ops {
        let mut cur = op;
        // Each successful fuse can widen `cur`'s qubit set (1q absorbed into
        // 2q), so restart the backward scan until nothing more absorbs.
        'retry: while let Some(cur_q) = kind_qubits(&cur.kind) {
            let mut blocked: Vec<QubitId> = Vec::new();
            for i in (0..out.len()).rev() {
                let prev = &out[i];
                if !aggressive && !prev.consumes_no_rng() {
                    break 'retry;
                }
                let Some(prev_q) = kind_qubits(&prev.kind) else {
                    break 'retry;
                };
                if qubits_overlap(cur_q, prev_q) && disjoint_from(&blocked, prev_q) {
                    if let Some(kind) = combine_kinds(&prev.kind, &cur.kind) {
                        // Conjugate the absorbed op's channels past `cur`'s
                        // *pre-fusion* kernel — the unitary they now have to
                        // cross — before committing to the fused kernel.
                        if let Some(mut carried) = carry_channels(prev, &cur.kind) {
                            cur.kind = kind;
                            carried.append(&mut cur.carried);
                            cur.carried = compress_carried(carried);
                            out.remove(i);
                            fused += 1;
                            continue 'retry;
                        }
                    }
                }
                blocked.push(prev_q.0);
                blocked.extend(prev_q.1);
                // Once every one of cur's qubits is blocked, no deeper op can
                // still commute its way forward.
                if !disjoint_from(&blocked, (cur_q.0, None))
                    && cur_q.1.is_none_or(|q| !disjoint_from(&blocked, (q, None)))
                {
                    break 'retry;
                }
            }
            break;
        }
        out.push(cur);
    }
    (out, fused)
}

/// Upper bound on the Kraus-operator count of a composed carried channel;
/// adjacent same-target channels whose composition would exceed it stay
/// separate (each then costs one RNG draw instead of one combined draw).
const MAX_COMPOSED_KRAUS: usize = 64;

/// The qubit set an attached channel acts on.
fn attached_qubits(ch: &AttachedChannel) -> (QubitId, Option<QubitId>) {
    match ch {
        AttachedChannel::One { qubit, .. } => (*qubit, None),
        AttachedChannel::Two { q0, q1, .. } => (*q0, Some(*q1)),
    }
}

/// Collects `prev`'s real (non-identity) channels — carried, depolarizing,
/// relaxation, in trajectory order — each conjugated past `cur_kind` so they
/// can be re-attached after the fused kernel. `None` when some channel cannot
/// be carried (the caller then declines the fusion).
fn carry_channels(
    prev: &PrecompiledOp,
    cur_kind: &PrecompiledKind,
) -> Option<Vec<AttachedChannel>> {
    let own = prev
        .depolarizing
        .iter()
        .cloned()
        .chain(
            prev.relaxation
                .iter()
                .map(|(q, channel)| AttachedChannel::One {
                    channel: channel.clone(),
                    qubit: *q,
                }),
        );
    let mut carried = Vec::new();
    for ch in prev.carried.iter().cloned().chain(own) {
        if ch.is_identity() {
            continue;
        }
        carried.push(carry_channel(ch, cur_kind)?);
    }
    Some(carried)
}

/// Conjugates one attached channel past the unitary kernel `cur_kind`,
/// commuting it from before the kernel to after it. Channels on qubits
/// disjoint from the kernel pass through unchanged; overlapping channels are
/// conjugated by the kernel (1q channels are tensor-embedded into 2q arity
/// first). `None` for the one uncarriable shape: a 2q channel partially
/// overlapping a 2q kernel.
fn carry_channel(ch: AttachedChannel, cur_kind: &PrecompiledKind) -> Option<AttachedChannel> {
    match cur_kind {
        PrecompiledKind::Unitary1Q { matrix, qubit } => Some(match ch {
            AttachedChannel::One { channel, qubit: q } if q == *qubit => AttachedChannel::One {
                channel: channel.conjugate_by(matrix),
                qubit: q,
            },
            AttachedChannel::Two { channel, q0, q1 } if *qubit == q0 || *qubit == q1 => {
                AttachedChannel::Two {
                    channel: channel.conjugate_by(&embed_in_pair(matrix, *qubit, q0, q1)),
                    q0,
                    q1,
                }
            }
            disjoint => disjoint,
        }),
        PrecompiledKind::Unitary2Q { matrix, q0, q1 } => match ch {
            AttachedChannel::One { channel, qubit } if qubit == *q0 => Some(AttachedChannel::Two {
                channel: channel.embed_msb().conjugate_by(matrix),
                q0: *q0,
                q1: *q1,
            }),
            AttachedChannel::One { channel, qubit } if qubit == *q1 => Some(AttachedChannel::Two {
                channel: channel.embed_lsb().conjugate_by(matrix),
                q0: *q0,
                q1: *q1,
            }),
            AttachedChannel::Two {
                channel,
                q0: a,
                q1: b,
            } if (a, b) == (*q0, *q1) => Some(AttachedChannel::Two {
                channel: channel.conjugate_by(matrix),
                q0: a,
                q1: b,
            }),
            AttachedChannel::Two {
                channel,
                q0: a,
                q1: b,
            } if (a, b) == (*q1, *q0) => Some(AttachedChannel::Two {
                channel: channel.swap_factors().conjugate_by(matrix),
                q0: *q0,
                q1: *q1,
            }),
            AttachedChannel::Two { q0: a, q1: b, .. }
                if qubits_overlap((a, Some(b)), (*q0, Some(*q1))) =>
            {
                None
            }
            disjoint => Some(disjoint),
        },
        // `combine_kinds` never fuses into a Silent op.
        PrecompiledKind::Silent => None,
    }
}

/// Composes adjacent same-target carried channels to bound the RNG draws per
/// fused kernel. Each incoming channel scans backward across channels on
/// disjoint qubits (which commute with it) for one on the same target; a
/// merge is taken only while the composed Kraus set stays within
/// [`MAX_COMPOSED_KRAUS`] operators.
fn compress_carried(channels: Vec<AttachedChannel>) -> Vec<AttachedChannel> {
    let mut out: Vec<AttachedChannel> = Vec::with_capacity(channels.len());
    'next: for ch in channels {
        for slot in out.iter_mut().rev() {
            if let Some(merged) = merge_same_target(slot, &ch) {
                *slot = merged;
                continue 'next;
            }
            if qubits_overlap(attached_qubits(slot), attached_qubits(&ch)) {
                break;
            }
        }
        out.push(ch);
    }
    out
}

/// Composes `later ∘ earlier` when both channels act on the same target
/// (including a reversed 2q pair) and the composed operator count stays
/// within [`MAX_COMPOSED_KRAUS`].
fn merge_same_target(
    earlier: &AttachedChannel,
    later: &AttachedChannel,
) -> Option<AttachedChannel> {
    let fits = |a: usize, b: usize| a * b <= MAX_COMPOSED_KRAUS;
    match (earlier, later) {
        (
            AttachedChannel::One { channel: a, qubit },
            AttachedChannel::One {
                channel: b,
                qubit: qb,
            },
        ) if qubit == qb && fits(a.operators().len(), b.operators().len()) => {
            Some(AttachedChannel::One {
                channel: a.then(b),
                qubit: *qubit,
            })
        }
        (
            AttachedChannel::Two { channel: a, q0, q1 },
            AttachedChannel::Two {
                channel: b,
                q0: b0,
                q1: b1,
            },
        ) if fits(a.operators().len(), b.operators().len()) => {
            if (b0, b1) == (q0, q1) {
                Some(AttachedChannel::Two {
                    channel: a.then(b),
                    q0: *q0,
                    q1: *q1,
                })
            } else if (b0, b1) == (q1, q0) {
                Some(AttachedChannel::Two {
                    channel: a.then(&b.swap_factors()),
                    q0: *q0,
                    q1: *q1,
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Samples and applies one Kraus operator of a single-qubit channel.
///
/// Channels that are probabilistic unitary mixtures (`K†K = λI` for every
/// operator — depolarizing, dephasing, and their fused compositions) take a
/// fast path: the branch probabilities are state-independent, so one draw
/// picks a branch and at most one in-place sweep applies it, with no per-probe
/// state clone or renormalization. General channels fall back to the exact
/// probe loop.
pub(crate) fn apply_channel_1q<R: Rng + ?Sized>(
    state: &mut StateVector,
    channel: &Kraus1q,
    q: usize,
    rng: &mut R,
) {
    if channel.is_identity() {
        return;
    }
    let mut r: f64 = rng.gen_range(0.0..1.0);
    if let Some(mix) = channel.unitary_mix() {
        let last = mix.len() - 1;
        for (i, term) in mix.iter().enumerate() {
            if r < term.weight || i == last {
                if let Some(u) = &term.apply {
                    state.apply_one_qubit(u, q);
                }
                return;
            }
            r -= term.weight;
        }
        return;
    }
    let last = channel.operators().len() - 1;
    for (i, k) in channel.operators().iter().enumerate() {
        let mut probe = state.clone();
        probe.apply_one_qubit(k, q);
        let p = probe.norm_sqr();
        if r < p || i == last {
            if p > 1e-300 {
                probe.normalize();
                *state = probe;
            }
            return;
        }
        r -= p;
    }
}

/// Samples and applies one Kraus operator of a two-qubit channel (same
/// unitary-mixture fast path as [`apply_channel_1q`]).
pub(crate) fn apply_channel_2q<R: Rng + ?Sized>(
    state: &mut StateVector,
    channel: &Kraus2q,
    q0: usize,
    q1: usize,
    rng: &mut R,
) {
    if channel.is_identity() {
        return;
    }
    let mut r: f64 = rng.gen_range(0.0..1.0);
    if let Some(mix) = channel.unitary_mix() {
        let last = mix.len() - 1;
        for (i, term) in mix.iter().enumerate() {
            if r < term.weight || i == last {
                if let Some(u) = &term.apply {
                    state.apply_two_qubit(u, q0, q1);
                }
                return;
            }
            r -= term.weight;
        }
        return;
    }
    let last = channel.operators().len() - 1;
    for (i, k) in channel.operators().iter().enumerate() {
        let mut probe = state.clone();
        probe.apply_two_qubit(k, q0, q1);
        let p = probe.norm_sqr();
        if r < p || i == last {
            if p > 1e-300 {
                probe.normalize();
                *state = probe;
            }
            return;
        }
        r -= p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::Operation;
    use device::DeviceModel;
    use qmath::RngSeed;

    fn bell_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::cnot(0, 1));
        c.measure_all();
        c
    }

    #[test]
    fn lowering_preserves_op_structure() {
        let device = DeviceModel::aspen8(RngSeed(1));
        let noise = NoiseModel::from_device(&device);
        let pre = PrecompiledCircuit::new(&bell_circuit(), &noise);
        assert_eq!(pre.num_qubits(), 2);
        assert_eq!(pre.ops().len(), 3);
        assert!(matches!(
            pre.ops()[0].kind,
            PrecompiledKind::Unitary1Q { qubit: 0, .. }
        ));
        assert!(matches!(
            pre.ops()[1].kind,
            PrecompiledKind::Unitary2Q { q0: 0, q1: 1, .. }
        ));
        assert!(matches!(pre.ops()[2].kind, PrecompiledKind::Silent));
        // Noisy device: channels were prebuilt.
        assert!(pre.ops()[1].depolarizing.is_some());
        assert!(!pre.is_noiseless());
        assert_eq!(pre.fusion(), FusionPolicy::Off);
        assert_eq!(pre.fused_ops(), 0);
    }

    #[test]
    fn ideal_lowering_is_noiseless() {
        let pre = PrecompiledCircuit::ideal(&bell_circuit());
        assert!(pre.is_noiseless());
        assert!(pre.readout_error().iter().all(|&p| p == 0.0));
        assert!(pre.ops().iter().all(|op| op.depolarizing.is_none()));
    }

    #[test]
    fn noiseless_model_lowering_is_noiseless() {
        let device = DeviceModel::ideal(2, 1.0);
        let noise = NoiseModel::noiseless(&device);
        let pre = PrecompiledCircuit::new(&bell_circuit(), &noise);
        assert!(pre.is_noiseless());
    }

    #[test]
    fn trajectory_matches_direct_statevector_when_noiseless() {
        let pre = PrecompiledCircuit::ideal(&bell_circuit());
        let mut rng = RngSeed(3).rng();
        let state = pre.run_trajectory(&mut rng);
        let p = state.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sample_shot_stays_in_range() {
        let device = DeviceModel::aspen8(RngSeed(4));
        let noise = NoiseModel::from_device(&device);
        let pre = PrecompiledCircuit::new(&bell_circuit(), &noise);
        let mut rng = RngSeed(5).rng();
        for _ in 0..50 {
            assert!(pre.sample_shot(&mut rng) < 4);
        }
    }

    #[test]
    fn ideal_fusion_collapses_the_bell_circuit_to_one_kernel() {
        // H(0); CNOT(0,1); measure — the H absorbs into the CNOT.
        let pre = PrecompiledCircuit::ideal_with_fusion(&bell_circuit(), FusionPolicy::Safe);
        assert_eq!(pre.fused_ops(), 1);
        assert_eq!(pre.ops().len(), 2); // fused kernel + Silent measure
        let expected = gates::standard::cnot() * gates::standard::h().kron(&Mat2::identity());
        match &pre.ops()[0].kind {
            PrecompiledKind::Unitary2Q {
                matrix,
                q0: 0,
                q1: 1,
            } => {
                assert!(matrix.approx_eq(&expected, 1e-12));
            }
            other => panic!("expected a fused 2Q kernel, got {other:?}"),
        }
        let state = pre.run_trajectory(&mut RngSeed(1).rng());
        let p = state.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fusion_handles_runs_and_reversed_pairs() {
        let mut c = Circuit::new(3);
        c.push(Operation::rx(0, 0.3));
        c.push(Operation::rz(0, 0.7)); // 1q run on qubit 0
        c.push(Operation::h(1));
        c.push(Operation::cnot(0, 1)); // absorbs H(1), then the rx/rz run
        c.push(Operation::cnot(1, 0)); // reversed pair: still fuses
        c.push(Operation::x(2)); // disjoint qubit: fused across, not into
        c.push(Operation::cnot(0, 1));
        let pre = PrecompiledCircuit::ideal_with_fusion(&c, FusionPolicy::Safe);
        // rx, rz, h, cnot(0,1), cnot(1,0) collapse into one kernel, and the
        // final cnot fuses across the disjoint x(2) into it; x(2) survives.
        assert_eq!(pre.fused_ops(), 5);
        assert_eq!(pre.ops().len(), 2);
        // Agreement with the unfused lowering.
        let unfused = PrecompiledCircuit::ideal(&c);
        let a = pre.run_trajectory(&mut RngSeed(2).rng());
        let b = unfused.run_trajectory(&mut RngSeed(2).rng());
        for i in 0..8 {
            assert!((a.amplitude(i) - b.amplitude(i)).norm() < 1e-12);
        }
    }

    #[test]
    fn safe_fusion_never_crosses_noise() {
        // Real calibration noise on every op: nothing may fuse, and the
        // lowered ops must equal the unfused lowering exactly.
        let device = DeviceModel::aspen8(RngSeed(7));
        let noise = NoiseModel::from_device(&device);
        let fused = PrecompiledCircuit::with_fusion(&bell_circuit(), &noise, FusionPolicy::Safe);
        let unfused = PrecompiledCircuit::new(&bell_circuit(), &noise);
        assert_eq!(fused.fused_ops(), 0);
        assert_eq!(fused.ops(), unfused.ops());
    }

    #[test]
    fn fused_one_qubit_noise_keeps_its_target_qubit() {
        // 2q-error-only noise: 1q gates are noise-free and absorb into the
        // CNOT, whose 2q channel survives on the fused kernel.
        let device = DeviceModel::ideal(2, 0.9);
        let mut noise = NoiseModel::from_device(&device);
        noise.with_relaxation = false;
        noise.with_readout_error = false;
        let fused = PrecompiledCircuit::with_fusion(&bell_circuit(), &noise, FusionPolicy::Safe);
        assert_eq!(fused.fused_ops(), 1);
        let op = &fused.ops()[0];
        assert!(matches!(
            op.kind,
            PrecompiledKind::Unitary2Q { q0: 0, q1: 1, .. }
        ));
        assert!(matches!(
            op.depolarizing,
            Some(AttachedChannel::Two { q0: 0, q1: 1, .. })
        ));
    }

    #[test]
    fn swap_tensor_factors_matches_swap_conjugation() {
        let syc = gates::GateType::syc();
        let reordered = swap_tensor_factors(syc.unitary());
        let swap = gates::standard::swap();
        let conjugated = swap * *syc.unitary() * swap;
        assert!(reordered.approx_eq(&conjugated, 1e-12));
    }
}
