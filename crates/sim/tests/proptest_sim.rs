//! Property-based tests for the simulator.

use circuit::{Circuit, Operation};
use gates::standard;
use proptest::prelude::*;
use qmath::RngSeed;
use sim::{IdealSimulator, StateVector};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_qubit_gates_preserve_norm(theta in -3.0f64..3.0, q in 0usize..3) {
        let mut s = StateVector::zero_state(3);
        s.apply_one_qubit(&standard::h(), 0);
        s.apply_one_qubit(&standard::h(), 1);
        s.apply_one_qubit(&standard::rx(theta), q);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn two_qubit_gates_preserve_norm(theta in -3.0f64..3.0, phi in -3.0f64..3.0) {
        let mut s = StateVector::zero_state(3);
        s.apply_one_qubit(&standard::h(), 0);
        s.apply_two_qubit(&gates::fsim::fsim(theta.abs(), phi.abs()), 0, 2);
        prop_assert!((s.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn probabilities_sum_to_one(a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let mut c = Circuit::new(3);
        c.push(Operation::rx(0, a));
        c.push(Operation::zz(0, 1, b));
        c.push(Operation::xx_plus_yy(1, 2, a));
        let p = IdealSimulator::probabilities(&c);
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
    }

    #[test]
    fn sampling_total_matches_shots(shots in 1usize..200, seed in 0u64..1000) {
        let mut c = Circuit::new(2);
        c.push(Operation::h(0));
        c.push(Operation::cnot(0, 1));
        c.measure_all();
        let counts = IdealSimulator::sample(&c, shots, RngSeed(seed));
        prop_assert_eq!(counts.total(), shots);
    }

    #[test]
    fn phase_gates_do_not_change_measurement_distribution(phi in -3.0f64..3.0) {
        let mut with_phase = Circuit::new(2);
        with_phase.push(Operation::h(0));
        with_phase.push(Operation::rz(0, phi));
        with_phase.push(Operation::cphase(0, 1, phi));
        let mut without = Circuit::new(2);
        without.push(Operation::h(0));
        let a = IdealSimulator::probabilities(&with_phase);
        let b = IdealSimulator::probabilities(&without);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }
}
