//! Analytic two-qubit synthesis — the linear-algebra baseline NuOp is compared
//! against (paper §V, Fig. 6).
//!
//! Industry compilers (IBM Qiskit, Google Cirq, Rigetti Quilc) decompose
//! two-qubit unitaries with KAK-style linear algebra: every `U ∈ U(4)` can be
//! written as
//!
//! ```text
//! U = (A1 ⊗ A0) · exp(i (x XX + y YY + z ZZ)) · (B1 ⊗ B0)
//! ```
//!
//! where the *Weyl coordinates* `(x, y, z)` fully determine how many
//! applications of a given hardware gate are required. This crate provides:
//!
//! * [`weyl`] — computation of the local-equivalence invariants and Weyl
//!   coordinates of a 4×4 unitary, and the minimal CNOT/CZ count implied by
//!   them.
//! * [`cirq_baseline`] — a model of the gate counts produced by a
//!   Cirq-v0.8-style compiler for the hardware gate types studied in the paper
//!   (CZ, SYC, iSWAP, √iSWAP), used as the Fig. 6 baseline.
//! * [`analytic`] — explicit, exact constructions of common application
//!   unitaries (CNOT, SWAP, ZZ(β), CPHASE(φ)) from the CZ gate, used by tests
//!   and by the compiler's fallback paths.

#![warn(missing_docs)]

pub mod analytic;
pub mod cirq_baseline;
pub mod weyl;

pub use cirq_baseline::{cirq_gate_count, CirqTargetGate};
pub use weyl::{minimal_cnot_count, weyl_coordinates, WeylCoordinates};
