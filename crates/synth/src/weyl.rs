//! Weyl-chamber (KAK) invariants of two-qubit unitaries.
//!
//! Every `U ∈ U(4)` is locally equivalent to a *canonical gate*
//! `exp(i (x·XX + y·YY + z·ZZ))`; the triple `(x, y, z)` (the Weyl
//! coordinates) is a complete invariant under single-qubit rotations and
//! therefore determines exactly how many applications of a given hardware
//! two-qubit gate are needed to synthesize `U`.
//!
//! The minimal-CNOT-count rules implemented here follow Shende, Bullock &
//! Markov, "Recognizing small-circuit structure in two-qubit operators"
//! (Phys. Rev. A 70, 012310): with `γ(U) = U (Y⊗Y) Uᵀ (Y⊗Y)` computed for the
//! special-unitary representative of `U`,
//!
//! * 0 CNOTs ⇔ `|tr γ| = 4` (U is a local gate),
//! * 1 CNOT  ⇔ `tr γ = 0`,
//! * 2 CNOTs ⇔ `tr γ` is real,
//! * 3 CNOTs otherwise.

use qmath::{Complex, Mat4};
use serde::{Deserialize, Serialize};

use gates::standard;

/// The canonical interaction coefficients `(x, y, z)` of a two-qubit unitary,
/// reduced to a normal form that is identical for locally-equivalent gates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeylCoordinates {
    /// XX interaction coefficient.
    pub x: f64,
    /// YY interaction coefficient.
    pub y: f64,
    /// ZZ interaction coefficient.
    pub z: f64,
}

impl WeylCoordinates {
    /// True when all coordinates agree with `other` within `tol`.
    pub fn approx_eq(&self, other: &WeylCoordinates, tol: f64) -> bool {
        (self.x - other.x).abs() <= tol
            && (self.y - other.y).abs() <= tol
            && (self.z - other.z).abs() <= tol
    }

    /// True when the gate is locally equivalent to the identity.
    pub fn is_local(&self, tol: f64) -> bool {
        self.x.abs() <= tol && self.y.abs() <= tol && self.z.abs() <= tol
    }
}

/// Returns the special-unitary representative `U / det(U)^{1/4}` of a 4×4 unitary.
fn to_su4(u: &Mat4) -> Mat4 {
    let det = u.determinant();
    let phase = Complex::cis(-det.arg() / 4.0);
    u.scale_complex(phase)
}

/// The Makhlin/SBM invariant `γ(U) = U (Y⊗Y) Uᵀ (Y⊗Y)` of the SU(4)
/// representative of `u`.
fn gamma(u: &Mat4) -> Mat4 {
    let su = to_su4(u);
    let yy = standard::y().kron(&standard::y());
    let ut = su.transpose();
    su * yy * ut * yy
}

/// Trace of the `γ` invariant. This single complex number decides the minimal
/// CNOT count (see module docs).
pub fn gamma_trace(u: &Mat4) -> Complex {
    gamma(u).trace()
}

/// Minimal number of CNOT (equivalently CZ) gates required to implement `u`
/// exactly, according to the Shende–Bullock–Markov criteria.
///
/// # Panics
/// Panics if `u` is not a 4×4 unitary.
pub fn minimal_cnot_count(u: &Mat4) -> usize {
    assert!(u.is_unitary(1e-8), "expected a unitary matrix");
    let tol = 1e-6;
    let g = gamma(u);
    let tr = g.trace();
    // Local gate: γ = ±I (trace ±4 and real).
    if tr.im.abs() < tol && (tr.re.abs() - 4.0).abs() < tol {
        return 0;
    }
    // One CNOT: tr γ = 0 and γ² = −I.
    if tr.norm() < tol {
        let g2 = g * g;
        let minus_id = Mat4::identity().scale(-1.0);
        if g2.approx_eq(&minus_id, 1e-6) {
            return 1;
        }
    }
    // Two CNOTs: tr γ is real.
    if tr.im.abs() < tol {
        return 2;
    }
    3
}

/// Computes the Weyl coordinates of a two-qubit unitary.
///
/// The coordinates are extracted from the eigenphases of `mᵀ m`, where `m` is
/// the SU(4) representative expressed in the magic (Bell) basis, and then
/// reduced to a normal form: each coordinate is folded into `[0, π/4]` (with
/// the usual Weyl-chamber reflection at `π/4`) and the triple is sorted in
/// decreasing order. Locally-equivalent unitaries map to the same normal form.
///
/// # Panics
/// Panics if `u` is not a 4×4 unitary.
pub fn weyl_coordinates(u: &Mat4) -> WeylCoordinates {
    assert!(u.is_unitary(1e-8), "expected a unitary matrix");
    let su = to_su4(u);
    let b = magic_basis();
    let m = b.dagger() * su * b;
    let mm = m.transpose() * m;
    // Eigenvalues of the (unitary, symmetric) matrix mᵀm are e^{2iθ_k} with
    // Σθ_k ≡ 0 (mod π).
    let eigenvalues = unitary_eigenvalues_4x4(&mm);
    let mut thetas: Vec<f64> = eigenvalues.iter().map(|l| l.arg() / 2.0).collect();
    // Fix the branch so that the phases sum to (approximately) a multiple of π,
    // shifting one phase by π if needed.
    let sum: f64 = thetas.iter().sum();
    let residue = sum - (sum / std::f64::consts::PI).round() * std::f64::consts::PI;
    thetas[0] -= residue;
    thetas.sort_by(|a, b| b.partial_cmp(a).expect("finite phases"));
    // Candidate coefficients from pairwise sums (θ = ±x±y±z combinations).
    let raw = [
        (thetas[0] + thetas[1]) / 2.0,
        (thetas[0] + thetas[2]) / 2.0,
        (thetas[1] + thetas[2]) / 2.0,
    ];
    let mut coords: Vec<f64> = raw.iter().map(|c| fold_coordinate(*c)).collect();
    coords.sort_by(|a, b| b.partial_cmp(a).expect("finite coords"));
    WeylCoordinates {
        x: coords[0],
        y: coords[1],
        z: coords[2],
    }
}

/// Folds an interaction coefficient into the normal-form interval `[0, π/4]`:
/// coefficients are π/2-periodic, sign-symmetric, and reflected about π/4.
fn fold_coordinate(c: f64) -> f64 {
    let period = std::f64::consts::FRAC_PI_2;
    let mut v = c.rem_euclid(period);
    if v > period / 2.0 {
        v = period - v;
    }
    if v.abs() < 1e-9 {
        v = 0.0;
    }
    v
}

/// The magic (Bell) basis change matrix.
fn magic_basis() -> Mat4 {
    let s = std::f64::consts::FRAC_1_SQRT_2;
    Mat4::from_rows(&[
        Complex::new(s, 0.0),
        Complex::ZERO,
        Complex::ZERO,
        Complex::new(0.0, s),
        //
        Complex::ZERO,
        Complex::new(0.0, s),
        Complex::new(s, 0.0),
        Complex::ZERO,
        //
        Complex::ZERO,
        Complex::new(0.0, s),
        Complex::new(-s, 0.0),
        Complex::ZERO,
        //
        Complex::new(s, 0.0),
        Complex::ZERO,
        Complex::ZERO,
        Complex::new(0.0, -s),
    ])
}

/// Eigenvalues of a 4×4 unitary matrix via its characteristic polynomial
/// (coefficients from the Faddeev–LeVerrier recursion) and Durand–Kerner
/// root iteration. Adequate for matrices whose eigenvalues lie on the unit
/// circle, which is all this module needs.
fn unitary_eigenvalues_4x4(m: &Mat4) -> [Complex; 4] {
    // Faddeev–LeVerrier: p(λ) = λ^4 + c3 λ^3 + c2 λ^2 + c1 λ + c0
    let id = Mat4::identity();
    let mut mk = *m;
    let c3 = -mk.trace();
    let mut aux = mk + id.scale_complex(c3);
    mk = *m * aux;
    let c2 = mk.trace().scale(-0.5);
    aux = mk + id.scale_complex(c2);
    mk = *m * aux;
    let c1 = mk.trace().scale(-1.0 / 3.0);
    aux = mk + id.scale_complex(c1);
    mk = *m * aux;
    let c0 = mk.trace().scale(-0.25);

    let poly = move |z: Complex| {
        let z2 = z * z;
        let z3 = z2 * z;
        let z4 = z3 * z;
        z4 + c3 * z3 + c2 * z2 + c1 * z + c0
    };

    // Durand–Kerner with the usual rotating initial guesses.
    let mut roots = [
        Complex::from_polar(1.0, 0.4),
        Complex::from_polar(1.0, 0.4 + std::f64::consts::FRAC_PI_2),
        Complex::from_polar(1.0, 0.4 + std::f64::consts::PI),
        Complex::from_polar(1.0, 0.4 + 1.5 * std::f64::consts::PI),
    ];
    for _ in 0..200 {
        let mut max_step = 0.0f64;
        for i in 0..4 {
            let mut denom = Complex::ONE;
            for j in 0..4 {
                if i != j {
                    denom *= roots[i] - roots[j];
                }
            }
            let delta = poly(roots[i]) / denom;
            roots[i] -= delta;
            max_step = max_step.max(delta.norm());
        }
        if max_step < 1e-14 {
            break;
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::fsim::{fsim, xy};
    use gates::GateType;
    use qmath::{haar_random_su4, haar_random_unitary, Mat2, RngSeed};

    #[test]
    fn identity_and_local_gates_need_zero_cnots() {
        assert_eq!(minimal_cnot_count(&Mat4::identity()), 0);
        let local = standard::h().kron(&standard::t());
        assert_eq!(minimal_cnot_count(&local), 0);
        assert!(weyl_coordinates(&local).is_local(1e-3));
    }

    #[test]
    fn cnot_and_cz_need_one() {
        assert_eq!(minimal_cnot_count(&standard::cnot()), 1);
        assert_eq!(minimal_cnot_count(&standard::cz()), 1);
    }

    #[test]
    fn controlled_phase_and_zz_need_two() {
        assert_eq!(minimal_cnot_count(&standard::cphase(0.7)), 2);
        assert_eq!(minimal_cnot_count(&standard::zz_interaction(0.0303)), 2);
        assert_eq!(minimal_cnot_count(&fsim(0.3, 0.0)), 2);
    }

    #[test]
    fn swap_and_generic_su4_need_three() {
        assert_eq!(minimal_cnot_count(&standard::swap()), 3);
        let mut rng = RngSeed(123).rng();
        for _ in 0..5 {
            let u = haar_random_su4(&mut rng);
            assert_eq!(minimal_cnot_count(&u), 3);
        }
    }

    #[test]
    fn iswap_needs_two() {
        assert_eq!(minimal_cnot_count(&standard::iswap()), 2);
        assert_eq!(minimal_cnot_count(GateType::iswap().unitary()), 2);
    }

    #[test]
    fn weyl_coordinates_are_local_invariants() {
        let mut rng = RngSeed(5).rng();
        for _ in 0..5 {
            let u = haar_random_su4(&mut rng);
            let a = Mat2::try_from(&haar_random_unitary(2, &mut rng)).unwrap();
            let b = Mat2::try_from(&haar_random_unitary(2, &mut rng)).unwrap();
            let c = Mat2::try_from(&haar_random_unitary(2, &mut rng)).unwrap();
            let d = Mat2::try_from(&haar_random_unitary(2, &mut rng)).unwrap();
            let dressed = a.kron(&b) * u * c.kron(&d);
            let w1 = weyl_coordinates(&u);
            let w2 = weyl_coordinates(&dressed);
            assert!(w1.approx_eq(&w2, 1e-5), "w1={w1:?} w2={w2:?}");
        }
    }

    #[test]
    fn locally_equivalent_named_gates_share_coordinates() {
        // CZ and CNOT are locally equivalent.
        let cz = weyl_coordinates(&standard::cz());
        let cnot = weyl_coordinates(&standard::cnot());
        assert!(cz.approx_eq(&cnot, 1e-4));
        // iSWAP and XY(pi) are locally equivalent.
        let isw = weyl_coordinates(&standard::iswap());
        let xypi = weyl_coordinates(&xy(std::f64::consts::PI));
        assert!(isw.approx_eq(&xypi, 1e-4));
        // fSim(theta, 0) and XY(2*theta) are locally equivalent.
        let a = weyl_coordinates(&fsim(0.37, 0.0));
        let b = weyl_coordinates(&xy(0.74));
        assert!(a.approx_eq(&b, 1e-4));
    }

    #[test]
    fn distinct_classes_have_distinct_coordinates() {
        let id = weyl_coordinates(&Mat4::identity());
        let cz = weyl_coordinates(&standard::cz());
        let swap = weyl_coordinates(&standard::swap());
        let iswap = weyl_coordinates(&standard::iswap());
        assert!(!id.approx_eq(&cz, 1e-3));
        assert!(!cz.approx_eq(&swap, 1e-3));
        assert!(!iswap.approx_eq(&swap, 1e-3));
        assert!(!cz.approx_eq(&iswap, 1e-3));
    }

    #[test]
    fn cnot_has_quarter_pi_interaction() {
        let w = weyl_coordinates(&standard::cnot());
        assert!((w.x - std::f64::consts::FRAC_PI_4).abs() < 1e-4, "{w:?}");
        assert!(w.y.abs() < 1e-4);
        assert!(w.z.abs() < 1e-4);
    }

    #[test]
    fn swap_is_the_chamber_corner() {
        let w = weyl_coordinates(&standard::swap());
        // The eigenphase extraction loses a few digits on the 4-fold degenerate
        // SWAP spectrum, so compare with a millirad tolerance.
        let q = std::f64::consts::FRAC_PI_4;
        assert!(
            (w.x - q).abs() < 2e-3 && (w.y - q).abs() < 2e-3 && (w.z - q).abs() < 2e-3,
            "{w:?}"
        );
    }

    #[test]
    fn gamma_trace_of_identity_is_four() {
        let tr = gamma_trace(&Mat4::identity());
        assert!((tr.norm() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn eigenvalue_solver_matches_diagonal_matrix() {
        let d = Mat4::diagonal(&[
            Complex::cis(0.1),
            Complex::cis(1.2),
            Complex::cis(-2.0),
            Complex::cis(3.0),
        ]);
        let mut got: Vec<f64> = unitary_eigenvalues_4x4(&d)
            .iter()
            .map(|z| z.arg())
            .collect();
        let mut want = [0.1, 1.2, -2.0, 3.0];
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-9, "got {g}, want {w}");
        }
    }
}
