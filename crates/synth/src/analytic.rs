//! Exact analytic constructions of common application unitaries from the CZ
//! gate.
//!
//! These are the textbook identities an analytic compiler hard-codes. They are
//! used by tests (to cross-check NuOp's numerically found decompositions) and
//! by the compiler crate as a deterministic fallback for routing SWAPs when no
//! native SWAP gate exists.

use circuit::{Circuit, Operation, QubitId};
use std::f64::consts::{FRAC_PI_2, PI};

/// `CNOT(control, target)` from one CZ and two Hadamards.
pub fn cnot_via_cz(control: QubitId, target: QubitId) -> Vec<Operation> {
    vec![
        Operation::h(target),
        Operation::cz(control, target),
        Operation::h(target),
    ]
}

/// `SWAP(a, b)` from three CNOTs (hence three CZs and six Hadamards).
pub fn swap_via_cz(a: QubitId, b: QubitId) -> Vec<Operation> {
    let mut ops = Vec::new();
    ops.extend(cnot_via_cz(a, b));
    ops.extend(cnot_via_cz(b, a));
    ops.extend(cnot_via_cz(a, b));
    ops
}

/// `exp(-i β Z⊗Z)` from two CNOTs and one RZ.
pub fn zz_via_cz(a: QubitId, b: QubitId, beta: f64) -> Vec<Operation> {
    let mut ops = Vec::new();
    ops.extend(cnot_via_cz(a, b));
    ops.push(Operation::rz(b, 2.0 * beta));
    ops.extend(cnot_via_cz(a, b));
    ops
}

/// Controlled-phase `CZ(φ)` from two CNOTs and three phase rotations.
pub fn cphase_via_cz(a: QubitId, b: QubitId, phi: f64) -> Vec<Operation> {
    // Standard construction: P(φ/2) on both qubits, CNOT, P(-φ/2), CNOT.
    let mut ops = Vec::new();
    ops.push(Operation::unitary1q(
        format!("P({:.3})", phi / 2.0),
        gates::standard::phase(phi / 2.0),
        a,
    ));
    ops.push(Operation::unitary1q(
        format!("P({:.3})", phi / 2.0),
        gates::standard::phase(phi / 2.0),
        b,
    ));
    ops.extend(cnot_via_cz(a, b));
    ops.push(Operation::unitary1q(
        format!("P({:.3})", -phi / 2.0),
        gates::standard::phase(-phi / 2.0),
        b,
    ));
    ops.extend(cnot_via_cz(a, b));
    ops
}

/// The three-CZ construction of an arbitrary-basis Hadamard-sandwiched SWAP
/// used when routing on devices whose only native gate is CZ. Returns a
/// circuit fragment (not a full circuit) acting on `(a, b)`.
pub fn routing_swap(a: QubitId, b: QubitId) -> Vec<Operation> {
    swap_via_cz(a, b)
}

/// Builds a [`Circuit`] over `n` qubits from a fragment of operations.
pub fn fragment_to_circuit(n: usize, ops: Vec<Operation>) -> Circuit {
    let mut c = Circuit::new(n);
    for op in ops {
        c.push(op);
    }
    c
}

/// Number of two-qubit gates in a fragment.
pub fn two_qubit_count(ops: &[Operation]) -> usize {
    ops.iter().filter(|o| o.is_two_qubit_unitary()).count()
}

/// The QFT rotation angle `π/2^t` used by QFT circuits.
pub fn qft_angle(t: u32) -> f64 {
    PI / f64::from(1u32 << t)
}

/// A Hadamard-free "half" SWAP built from iSWAP-style rotations; provided for
/// completeness of the analytic toolbox (`XY(π/2)` twice plus corrections is
/// not generally cheaper, so routing uses [`routing_swap`]).
pub fn double_sqrt_iswap(a: QubitId, b: QubitId) -> Vec<Operation> {
    let g = gates::GateType::sqrt_iswap();
    vec![
        Operation::from_gate_type(&g, a, b),
        Operation::from_gate_type(&g, a, b),
    ]
}

/// Rotation decomposition `U3(θ, φ, λ) = RZ(φ) RY(θ) RZ(λ)` sanity helper used
/// by tests: returns the three operations in application order.
pub fn u3_as_euler(q: QubitId, theta: f64, phi: f64, lambda: f64) -> Vec<Operation> {
    vec![
        Operation::rz(q, lambda),
        Operation::unitary1q(format!("RY({theta:.3})"), gates::standard::ry(theta), q),
        Operation::rz(q, phi),
    ]
}

/// The angle by which `XY(θ)` must be applied twice to give `XY(2θ)`; trivially
/// θ, but kept as a named helper so compiler code reads declaratively.
pub fn xy_half_angle(theta: f64) -> f64 {
    theta / 2.0
}

/// π/2, the CPHASE angle of the first off-diagonal QFT rotation.
pub const QFT_FIRST_ANGLE: f64 = FRAC_PI_2;

#[cfg(test)]
mod tests {
    use super::*;
    use gates::standard;
    use qmath::hilbert_schmidt_fidelity;

    fn unitary_of(n: usize, ops: Vec<Operation>) -> qmath::CMatrix {
        fragment_to_circuit(n, ops).unitary()
    }

    #[test]
    fn cnot_construction_is_exact() {
        let u = unitary_of(2, cnot_via_cz(0, 1));
        assert!(u.approx_eq(&standard::cnot(), 1e-12));
    }

    #[test]
    fn swap_construction_is_exact() {
        let u = unitary_of(2, swap_via_cz(0, 1));
        assert!(u.approx_eq(&standard::swap(), 1e-12));
        assert_eq!(two_qubit_count(&swap_via_cz(0, 1)), 3);
    }

    #[test]
    fn zz_construction_matches_target_up_to_phase() {
        for beta in [0.0303, 0.4, 1.2] {
            let u = unitary_of(2, zz_via_cz(0, 1, beta));
            let target = standard::zz_interaction(beta);
            let f = hilbert_schmidt_fidelity(&u, &target);
            assert!(f > 1.0 - 1e-10, "beta={beta}, fidelity={f}");
        }
    }

    #[test]
    fn cphase_construction_matches_target_up_to_phase() {
        for phi in [0.1, FRAC_PI_2, 2.5] {
            let u = unitary_of(2, cphase_via_cz(0, 1, phi));
            let target = standard::cphase(phi);
            let f = hilbert_schmidt_fidelity(&u, &target);
            assert!(f > 1.0 - 1e-10, "phi={phi}, fidelity={f}");
        }
    }

    #[test]
    fn double_sqrt_iswap_gives_iswap_class() {
        let u = unitary_of(2, double_sqrt_iswap(0, 1));
        // (fSim(pi/4,0))^2 = fSim(pi/2,0), the iSWAP class.
        assert!(u.approx_eq(gates::GateType::iswap().unitary(), 1e-12));
    }

    #[test]
    fn euler_decomposition_matches_u3_up_to_phase() {
        let (theta, phi, lambda) = (0.7, 1.3, -0.4);
        let u = unitary_of(1, u3_as_euler(0, theta, phi, lambda));
        let target = standard::u3(theta, phi, lambda);
        let f = hilbert_schmidt_fidelity(&u, &target);
        assert!(f > 1.0 - 1e-10, "fidelity = {f}");
    }

    #[test]
    fn qft_angles_halve() {
        assert!((qft_angle(1) - FRAC_PI_2).abs() < 1e-15);
        assert!((qft_angle(2) - PI / 4.0).abs() < 1e-15);
        assert!((qft_angle(3) - PI / 8.0).abs() < 1e-15);
    }

    #[test]
    fn routing_swap_on_wider_register() {
        let u = unitary_of(3, routing_swap(0, 2));
        let expect = circuit::embed_two_qubit(&standard::swap(), 0, 2, 3);
        assert!(u.approx_eq(&expect, 1e-12));
    }
}
