//! A model of the gate counts produced by a Cirq-v0.8-style compiler.
//!
//! Figure 6 of the paper compares NuOp against the KAK-based decomposition
//! routines in Google Cirq v0.8.2. Cirq's behaviour for the gate types of
//! interest is:
//!
//! * **CZ / CNOT targets** — optimal analytic KAK synthesis: 0–3 gates chosen
//!   by the Shende–Bullock–Markov criteria.
//! * **SYC targets** — a fixed "convert via CZ" pipeline: each of the (up to 3)
//!   CZs in the analytic decomposition is re-expressed with 2 SYC gates, so a
//!   generic SU(4) costs 6 SYC applications.
//! * **iSWAP targets** — a fixed construction using 4 iSWAPs for a generic
//!   unitary (and 2 for CPHASE-class targets).
//! * **√iSWAP targets** — not supported for arbitrary unitaries in v0.8
//!   (the paper notes "Cirq does not support decompositions for QV with
//!   √iSWAP").
//!
//! The numbers here reproduce the Cirq columns of Fig. 6 and give the baseline
//! that NuOp's counts are compared against.

use qmath::Mat4;
use serde::{Deserialize, Serialize};

use crate::weyl::minimal_cnot_count;

/// Hardware gate types the Cirq-style baseline can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CirqTargetGate {
    /// Controlled-Z (or CNOT, same class).
    Cz,
    /// Google Sycamore gate `fSim(π/2, π/6)`.
    Syc,
    /// iSWAP gate.
    Iswap,
    /// √iSWAP gate.
    SqrtIswap,
}

impl CirqTargetGate {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            CirqTargetGate::Cz => "CZ",
            CirqTargetGate::Syc => "SYC",
            CirqTargetGate::Iswap => "iSWAP",
            CirqTargetGate::SqrtIswap => "sqrt_iSWAP",
        }
    }
}

/// Number of two-qubit hardware gates a Cirq-v0.8-style compiler emits to
/// synthesize `target` with the given hardware gate, or `None` when that
/// compiler has no decomposition routine for the combination (√iSWAP with a
/// generic unitary).
///
/// # Panics
/// Panics if `target` is not unitary.
pub fn cirq_gate_count(target: &Mat4, gate: CirqTargetGate) -> Option<usize> {
    let cnots = minimal_cnot_count(target);
    match gate {
        CirqTargetGate::Cz => Some(cnots),
        // Cirq's ConvertToSycamoreGates re-expresses each CZ with two SYC
        // gates (and handles local gates for free).
        CirqTargetGate::Syc => Some(2 * cnots),
        // Cirq's iSWAP path: local gates free, CPHASE-class targets cost 2,
        // anything else uses the generic 4-iSWAP construction.
        CirqTargetGate::Iswap => Some(match cnots {
            0 => 0,
            1 | 2 => 2,
            _ => 4,
        }),
        // v0.8 has no generic two-qubit-to-sqrt-iSWAP synthesis; only targets
        // that are locally equivalent to at most one sqrt-iSWAP layer pass.
        CirqTargetGate::SqrtIswap => match cnots {
            0 => Some(0),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates::standard;
    use qmath::{haar_random_su4, RngSeed};

    #[test]
    fn cz_baseline_matches_kak_counts() {
        assert_eq!(
            cirq_gate_count(&Mat4::identity(), CirqTargetGate::Cz),
            Some(0)
        );
        assert_eq!(
            cirq_gate_count(&standard::cnot(), CirqTargetGate::Cz),
            Some(1)
        );
        assert_eq!(
            cirq_gate_count(&standard::zz_interaction(0.4), CirqTargetGate::Cz),
            Some(2)
        );
        let mut rng = RngSeed(8).rng();
        let qv = haar_random_su4(&mut rng);
        assert_eq!(cirq_gate_count(&qv, CirqTargetGate::Cz), Some(3));
    }

    #[test]
    fn syc_baseline_uses_six_gates_for_generic_unitaries() {
        // Paper: "Cirq requires 3 CZ, 6 SYC, or 4 iSWAP gates" for a QV unitary.
        let mut rng = RngSeed(9).rng();
        let qv = haar_random_su4(&mut rng);
        assert_eq!(cirq_gate_count(&qv, CirqTargetGate::Syc), Some(6));
        assert_eq!(cirq_gate_count(&qv, CirqTargetGate::Iswap), Some(4));
        assert_eq!(cirq_gate_count(&qv, CirqTargetGate::SqrtIswap), None);
    }

    #[test]
    fn local_gates_are_free_for_every_target() {
        let local = standard::h().kron(&standard::s());
        for g in [
            CirqTargetGate::Cz,
            CirqTargetGate::Syc,
            CirqTargetGate::Iswap,
            CirqTargetGate::SqrtIswap,
        ] {
            assert_eq!(cirq_gate_count(&local, g), Some(0), "{}", g.name());
        }
    }

    #[test]
    fn qaoa_unitary_counts() {
        let zz = standard::zz_interaction(0.0303);
        assert_eq!(cirq_gate_count(&zz, CirqTargetGate::Cz), Some(2));
        assert_eq!(cirq_gate_count(&zz, CirqTargetGate::Syc), Some(4));
        assert_eq!(cirq_gate_count(&zz, CirqTargetGate::Iswap), Some(2));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(CirqTargetGate::SqrtIswap.name(), "sqrt_iSWAP");
        assert_eq!(CirqTargetGate::Cz.name(), "CZ");
    }
}
