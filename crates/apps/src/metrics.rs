//! Evaluation metrics (paper §VI, "Metrics").
//!
//! * Heavy-output probability (HOP) for Quantum Volume,
//! * cross-entropy difference (XED) for QAOA,
//! * linear cross-entropy benchmarking (XEB) fidelity for Fermi–Hubbard,
//! * success rate for QFT.
//!
//! Higher is better for all four.

use sim::Counts;

/// Probability floor used when a measured outcome has (numerically) zero ideal
/// probability, so cross-entropy terms stay finite.
const PROB_FLOOR: f64 = 1e-12;

/// Heavy-output probability: the fraction of measured shots that landed on a
/// "heavy" output, i.e. a basis state whose *ideal* probability exceeds the
/// median ideal probability. A set of qubits passes the Quantum Volume test
/// when the average HOP across circuits exceeds 2/3.
///
/// # Panics
/// Panics if `ideal_probabilities` is empty or its length does not cover the
/// measured outcomes.
pub fn heavy_output_probability(counts: &Counts, ideal_probabilities: &[f64]) -> f64 {
    assert!(
        !ideal_probabilities.is_empty(),
        "ideal distribution must not be empty"
    );
    let median = median(ideal_probabilities);
    let total = counts.total();
    if total == 0 {
        return 0.0;
    }
    let mut heavy_shots = 0usize;
    for (idx, count) in counts.iter() {
        assert!(
            idx < ideal_probabilities.len(),
            "outcome outside ideal distribution"
        );
        if ideal_probabilities[idx] > median {
            heavy_shots += count;
        }
    }
    heavy_shots as f64 / total as f64
}

/// Cross-entropy difference (Boixo et al.): measures how much closer the
/// sampled distribution is to the ideal one than uniform sampling is.
///
/// `XED = (H(uniform, ideal) − H(measured, ideal)) / (H(uniform, ideal) − H(ideal, ideal))`
///
/// where `H(q, p) = −Σ_x q(x) log p(x)`. The value is ≈1 when sampling from the
/// ideal distribution and ≈0 when sampling uniformly.
pub fn cross_entropy_difference(counts: &Counts, ideal_probabilities: &[f64]) -> f64 {
    let d = ideal_probabilities.len() as f64;
    assert!(d > 0.0, "ideal distribution must not be empty");
    // Cross entropy of the uniform distribution against the ideal.
    let h_uniform: f64 = ideal_probabilities
        .iter()
        .map(|&p| -(1.0 / d) * p.max(PROB_FLOOR).ln())
        .sum();
    // Self entropy of the ideal distribution.
    let h_ideal: f64 = ideal_probabilities
        .iter()
        .map(|&p| if p > PROB_FLOOR { -p * p.ln() } else { 0.0 })
        .sum();
    // Empirical cross entropy of the measured samples against the ideal.
    let total = counts.total();
    if total == 0 {
        return 0.0;
    }
    let h_measured: f64 = counts
        .iter()
        .map(|(idx, count)| {
            let p = ideal_probabilities
                .get(idx)
                .copied()
                .unwrap_or(0.0)
                .max(PROB_FLOOR);
            -(count as f64 / total as f64) * p.ln()
        })
        .sum();
    let denom = h_uniform - h_ideal;
    if denom.abs() < 1e-15 {
        // The ideal distribution *is* uniform (e.g. plain QFT on |0..0>); the
        // metric is undefined, return 0 by convention.
        return 0.0;
    }
    (h_uniform - h_measured) / denom
}

/// Linear cross-entropy benchmarking fidelity, normalized against the ideal
/// distribution's own self-overlap:
///
/// `F_XEB = (D · ⟨p_ideal(x)⟩_measured − 1) / (D · Σ_x p_ideal(x)² − 1)`
///
/// which is 1 for ideal sampling and 0 for uniform sampling. The
/// normalization matters for structured circuits (e.g. Fermi–Hubbard) whose
/// ideal distributions are far from the Porter–Thomas form assumed by the
/// unnormalized estimator; for fully scrambled random circuits the denominator
/// is ≈1 and the two definitions coincide.
pub fn linear_xeb_fidelity(counts: &Counts, ideal_probabilities: &[f64]) -> f64 {
    let d = ideal_probabilities.len() as f64;
    let total = counts.total();
    if total == 0 {
        return 0.0;
    }
    let mean_p: f64 = counts
        .iter()
        .map(|(idx, count)| ideal_probabilities.get(idx).copied().unwrap_or(0.0) * count as f64)
        .sum::<f64>()
        / total as f64;
    let numerator = d * mean_p - 1.0;
    let denominator = d * ideal_probabilities.iter().map(|p| p * p).sum::<f64>() - 1.0;
    if denominator.abs() < 1e-12 {
        // The ideal distribution is uniform; the estimator carries no signal.
        return 0.0;
    }
    numerator / denominator
}

/// Success rate: the fraction of shots that returned the expected basis state.
pub fn success_rate(counts: &Counts, expected_outcome: usize) -> f64 {
    counts.probability(expected_outcome)
}

fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite probabilities"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{qaoa_circuit, qv_circuit};
    use qmath::RngSeed;
    use sim::{ExecutionEngine, IdealSimulator, NoiseModel, SimJob};

    fn uniform_counts(num_qubits: usize, shots_per_state: usize) -> Counts {
        let mut counts = Counts::new(num_qubits);
        for idx in 0..(1 << num_qubits) {
            for _ in 0..shots_per_state {
                counts.record(idx);
            }
        }
        counts
    }

    #[test]
    fn hop_of_ideal_sampling_exceeds_two_thirds() {
        // Sampling a QV circuit ideally gives HOP ≈ 0.85 asymptotically.
        let c = qv_circuit(4, RngSeed(1));
        let ideal = IdealSimulator::probabilities(&c);
        let counts = IdealSimulator::sample(&c, 4000, RngSeed(2));
        let hop = heavy_output_probability(&counts, &ideal);
        assert!(hop > 2.0 / 3.0, "hop = {hop}");
    }

    #[test]
    fn hop_of_uniform_sampling_is_one_half() {
        let c = qv_circuit(4, RngSeed(3));
        let ideal = IdealSimulator::probabilities(&c);
        let counts = uniform_counts(4, 10);
        let hop = heavy_output_probability(&counts, &ideal);
        assert!((hop - 0.5).abs() < 0.1, "hop = {hop}");
    }

    #[test]
    fn xed_is_one_for_ideal_and_zero_for_uniform() {
        let c = qaoa_circuit(4, RngSeed(4));
        let ideal = IdealSimulator::probabilities(&c);
        let good = IdealSimulator::sample(&c, 20000, RngSeed(5));
        let xed_good = cross_entropy_difference(&good, &ideal);
        assert!(xed_good > 0.9, "xed = {xed_good}");
        let uniform = uniform_counts(4, 100);
        let xed_uniform = cross_entropy_difference(&uniform, &ideal);
        assert!(xed_uniform.abs() < 0.1, "xed = {xed_uniform}");
    }

    #[test]
    fn xeb_is_one_for_ideal_and_zero_for_uniform() {
        let c = qv_circuit(4, RngSeed(6));
        let ideal = IdealSimulator::probabilities(&c);
        let good = IdealSimulator::sample(&c, 20000, RngSeed(7));
        let xeb = linear_xeb_fidelity(&good, &ideal);
        // With the self-overlap normalization, ideal sampling scores ≈1
        // regardless of how scrambled the circuit's distribution is.
        assert!((xeb - 1.0).abs() < 0.15, "xeb = {xeb}");
        let uniform = uniform_counts(4, 100);
        let xeb_uniform = linear_xeb_fidelity(&uniform, &ideal);
        assert!(xeb_uniform.abs() < 0.05, "xeb = {xeb_uniform}");
    }

    #[test]
    fn noise_reduces_every_metric() {
        // Clean and noisy runs of the same circuit as one engine batch.
        let c = qv_circuit(3, RngSeed(8));
        let ideal = IdealSimulator::probabilities(&c);
        let device = device::DeviceModel::ideal(3, 0.93);
        let mut nm = NoiseModel::from_device(&device);
        nm.with_readout_error = false;
        let mut results = ExecutionEngine::new().run_batch(&[
            SimJob::ideal(c.clone(), 5000, RngSeed(9)),
            SimJob::noisy(c, nm, 2000, RngSeed(10)),
        ]);
        let noisy = results.pop().expect("noisy job ran").counts;
        let clean = results.pop().expect("ideal job ran").counts;
        assert!(
            heavy_output_probability(&noisy, &ideal) < heavy_output_probability(&clean, &ideal)
        );
        assert!(linear_xeb_fidelity(&noisy, &ideal) < linear_xeb_fidelity(&clean, &ideal));
        assert!(
            cross_entropy_difference(&noisy, &ideal) < cross_entropy_difference(&clean, &ideal)
        );
    }

    #[test]
    fn success_rate_counts_expected_outcome() {
        let mut counts = Counts::new(2);
        for _ in 0..70 {
            counts.record(2);
        }
        for _ in 0..30 {
            counts.record(1);
        }
        assert!((success_rate(&counts, 2) - 0.7).abs() < 1e-12);
        assert!((success_rate(&counts, 0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn xed_handles_uniform_ideal_distribution() {
        // QFT on |0..0> has a uniform ideal distribution; XED is defined as 0.
        let ideal = vec![0.125; 8];
        let counts = uniform_counts(3, 10);
        assert_eq!(cross_entropy_difference(&counts, &ideal), 0.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_give_zero_metrics() {
        let counts = Counts::new(2);
        let ideal = vec![0.25; 4];
        assert_eq!(heavy_output_probability(&counts, &ideal), 0.0);
        assert_eq!(cross_entropy_difference(&counts, &ideal), 0.0);
        assert_eq!(linear_xeb_fidelity(&counts, &ideal), 0.0);
    }
}
