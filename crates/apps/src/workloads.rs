//! Application circuit generators and two-qubit unitary pools.

use circuit::{Circuit, Operation, QubitId};
use gates::standard;
use qmath::{haar_random_su4, Mat4, RngSeed};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The four benchmark applications of the paper (plus the routing SWAP pseudo
/// workload used in Fig. 8e).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Quantum Volume random circuits.
    QuantumVolume,
    /// QAOA MaxCut ansatz.
    Qaoa,
    /// 1-D Fermi–Hubbard Trotter circuits.
    FermiHubbard,
    /// Quantum Fourier Transform.
    Qft,
    /// The SWAP unitary (qubit routing primitive).
    Swap,
}

impl Workload {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::QuantumVolume => "QV",
            Workload::Qaoa => "QAOA",
            Workload::FermiHubbard => "FH",
            Workload::Qft => "QFT",
            Workload::Swap => "SWAP",
        }
    }

    /// All workloads in the order used by Fig. 8.
    pub fn all() -> [Workload; 5] {
        [
            Workload::QuantumVolume,
            Workload::Qaoa,
            Workload::Qft,
            Workload::FermiHubbard,
            Workload::Swap,
        ]
    }
}

/// An `n`-qubit Quantum Volume model circuit (Cross et al.): `n` layers, each
/// applying Haar-random SU(4) gates to a random pairing of the qubits.
///
/// The circuit ends with a measurement of all qubits.
pub fn qv_circuit(n: usize, seed: RngSeed) -> Circuit {
    assert!(n >= 2, "QV circuits need at least two qubits");
    let mut rng = seed.rng();
    let mut c = Circuit::new(n);
    for _layer in 0..n {
        let mut order: Vec<QubitId> = (0..n).collect();
        order.shuffle(&mut rng);
        for pair in order.chunks(2) {
            if pair.len() == 2 {
                c.push(Operation::unitary2q(
                    "SU4",
                    haar_random_su4(&mut rng),
                    pair[0],
                    pair[1],
                ));
            }
        }
    }
    c.measure_all();
    c
}

/// A single-layer QAOA MaxCut ansatz over a random graph with
/// `⌈3n/4⌉` edges: `H` on every qubit, `ZZ(γ)` on every edge, `RX(2β)` mixers.
pub fn qaoa_circuit(n: usize, seed: RngSeed) -> Circuit {
    assert!(n >= 2, "QAOA circuits need at least two qubits");
    let mut rng = seed.rng();
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Operation::h(q));
    }
    let gamma: f64 = rng.gen_range(0.1..std::f64::consts::PI);
    let beta: f64 = rng.gen_range(0.1..std::f64::consts::PI);
    let edges = random_graph_edges(n, (3 * n).div_ceil(4), &mut rng);
    for (a, b) in edges {
        c.push(Operation::zz(a, b, gamma));
    }
    for q in 0..n {
        c.push(Operation::rx(q, 2.0 * beta));
    }
    c.measure_all();
    c
}

/// Chooses `count` distinct edges of the complete graph on `n` vertices.
fn random_graph_edges<R: Rng + ?Sized>(
    n: usize,
    count: usize,
    rng: &mut R,
) -> Vec<(QubitId, QubitId)> {
    let mut all: Vec<(QubitId, QubitId)> = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            all.push((a, b));
        }
    }
    all.shuffle(rng);
    all.truncate(count.min(all.len()));
    all
}

/// One Trotter step of the 1-D Fermi–Hubbard model on an `n`-qubit chain
/// (spinless Jordan–Wigner form): alternating layers of nearest-neighbour
/// `½(XX+YY)` hopping terms (even bonds, odd bonds, repeated) and `ZZ`
/// interaction terms, sized to match the paper's operation counts
/// (≈4n hopping terms and ≈2n ZZ terms per circuit).
pub fn fermi_hubbard_circuit(n: usize, seed: RngSeed) -> Circuit {
    assert!(n >= 2, "FH circuits need at least two qubits");
    let mut rng = seed.rng();
    let mut c = Circuit::new(n);
    // Initial product state: half filling (alternating X gates).
    for q in (0..n).step_by(2) {
        c.push(Operation::x(q));
    }
    let hop_angle: f64 = rng.gen_range(0.1..0.8);
    let zz_angle: f64 = rng.gen_range(0.05..0.5);
    // Two repetitions of (even hop, odd hop, even hop, odd hop, ZZ layer)
    // gives ~4(n-1) hopping and ~2(n-1) interaction terms.
    for _rep in 0..2 {
        for _hop_layer in 0..2 {
            for start in [0usize, 1usize] {
                let mut q = start;
                while q + 1 < n {
                    c.push(Operation::xx_plus_yy(q, q + 1, hop_angle));
                    q += 2;
                }
            }
        }
        let mut q = 0usize;
        while q + 1 < n {
            c.push(Operation::zz(q, q + 1, zz_angle));
            q += 1;
        }
    }
    c.measure_all();
    c
}

/// The standard `n`-qubit QFT circuit: `n` Hadamards and `n(n−1)/2`
/// controlled-phase gates `CZ(π/2^t)`.
pub fn qft_circuit(n: usize) -> Circuit {
    assert!(n >= 1, "QFT needs at least one qubit");
    let mut c = Circuit::new(n);
    for i in 0..n {
        c.push(Operation::h(i));
        for j in (i + 1)..n {
            let angle = std::f64::consts::PI / f64::from(1u32 << (j - i) as u32);
            c.push(Operation::cphase(j, i, angle));
        }
    }
    c
}

/// The QFT *echo* benchmark: prepare a random basis state `|x⟩`, apply QFT,
/// apply the inverse QFT, and measure. A perfect execution returns `x` with
/// probability 1, so the success rate is directly measurable on hardware.
///
/// Returns the circuit and the expected outcome index `x`.
pub fn qft_echo_circuit(n: usize, seed: RngSeed) -> (Circuit, usize) {
    let mut rng = seed.rng();
    let x: usize = rng.gen_range(0..(1usize << n));
    let mut c = Circuit::new(n);
    for q in 0..n {
        if x & (1 << (n - 1 - q)) != 0 {
            c.push(Operation::x(q));
        }
    }
    let qft = qft_circuit(n);
    c.append_circuit(&qft);
    c.append_circuit(&qft.inverse());
    c.measure_all();
    (c, x)
}

// ----- Two-qubit unitary pools for the Fig. 8 expressivity heatmaps -----

/// Haar-random SU(4) matrices: the two-qubit unitaries of QV circuits.
pub fn qv_unitaries(count: usize, seed: RngSeed) -> Vec<Mat4> {
    let mut rng = seed.rng();
    (0..count).map(|_| haar_random_su4(&mut rng)).collect()
}

/// Random-angle `exp(-iβ Z⊗Z)` matrices: the two-qubit unitaries of QAOA circuits.
pub fn qaoa_unitaries(count: usize, seed: RngSeed) -> Vec<Mat4> {
    let mut rng = seed.rng();
    (0..count)
        .map(|_| standard::zz_interaction(rng.gen_range(0.05..std::f64::consts::FRAC_PI_2)))
        .collect()
}

/// The distinct controlled-phase unitaries `CZ(π/2^t)` of an `n`-qubit QFT.
pub fn qft_unitaries(n: usize) -> Vec<Mat4> {
    (1..n)
        .map(|t| standard::cphase(std::f64::consts::PI / f64::from(1u32 << t as u32)))
        .collect()
}

/// Hopping (`½(XX+YY)`) and interaction (`ZZ`) unitaries of Fermi–Hubbard
/// circuits, with angles sampled over the physically relevant range.
pub fn fh_unitaries(count: usize, seed: RngSeed) -> Vec<Mat4> {
    let mut rng = seed.rng();
    (0..count)
        .map(|i| {
            if i % 3 == 2 {
                standard::zz_interaction(rng.gen_range(0.05..0.5))
            } else {
                standard::xx_plus_yy_interaction(rng.gen_range(0.1..0.8))
            }
        })
        .collect()
}

/// The SWAP unitary (routing primitive, Fig. 8e).
pub fn swap_unitary() -> Mat4 {
    standard::swap()
}

/// A pool of two-qubit unitaries for a workload, used by the Fig. 8 sweep.
pub fn unitary_pool(workload: Workload, count: usize, seed: RngSeed) -> Vec<Mat4> {
    match workload {
        Workload::QuantumVolume => qv_unitaries(count, seed),
        Workload::Qaoa => qaoa_unitaries(count, seed),
        Workload::Qft => {
            let pool = qft_unitaries(count.max(2) + 1);
            pool.into_iter().take(count).collect()
        }
        Workload::FermiHubbard => fh_unitaries(count, seed),
        Workload::Swap => vec![swap_unitary()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::IdealSimulator;

    #[test]
    fn qv_circuit_structure() {
        let c = qv_circuit(4, RngSeed(1));
        // 4 layers x 2 pairs = 8 SU4 gates.
        assert_eq!(c.two_qubit_gate_count(), 8);
        assert!(c.has_measurements());
        // All two-qubit gates are SU4-labelled and unitary.
        for op in c.iter().filter(|o| o.is_two_qubit_unitary()) {
            assert_eq!(op.label(), "SU4");
            assert!(op.matrix().unwrap().is_unitary(1e-9));
        }
    }

    #[test]
    fn qv_odd_qubit_count_leaves_one_idle_per_layer() {
        let c = qv_circuit(5, RngSeed(2));
        assert_eq!(c.two_qubit_gate_count(), 5 * 2);
    }

    #[test]
    fn qv_circuits_differ_across_seeds_but_not_within() {
        assert_eq!(qv_circuit(3, RngSeed(7)), qv_circuit(3, RngSeed(7)));
        assert_ne!(qv_circuit(3, RngSeed(7)), qv_circuit(3, RngSeed(8)));
    }

    #[test]
    fn qaoa_circuit_structure() {
        let n = 4;
        let c = qaoa_circuit(n, RngSeed(3));
        assert_eq!(c.two_qubit_gate_count(), 3); // ceil(3*4/4) = 3 edges
                                                 // H wall + RX mixers.
        assert!(c.one_qubit_gate_count() >= 2 * n);
        assert!(c.has_measurements());
    }

    #[test]
    fn fermi_hubbard_counts_scale_with_n() {
        for n in [4usize, 6, 10] {
            let c = fermi_hubbard_circuit(n, RngSeed(4));
            let counts = c.two_qubit_counts_by_label();
            let zz: usize = counts
                .iter()
                .filter(|(k, _)| k.starts_with("ZZ"))
                .map(|(_, v)| *v)
                .sum();
            let hop: usize = counts
                .iter()
                .filter(|(k, _)| k.starts_with("XXPlusYY"))
                .map(|(_, v)| *v)
                .sum();
            assert_eq!(zz, 2 * (n - 1), "n={n}");
            assert!(
                hop >= 4 * (n - 1) - 4 && hop <= 4 * (n - 1),
                "n={n}, hop={hop}"
            );
        }
    }

    #[test]
    fn qft_circuit_gate_counts() {
        for n in [3usize, 4, 6] {
            let c = qft_circuit(n);
            assert_eq!(c.two_qubit_gate_count(), n * (n - 1) / 2);
            assert_eq!(c.one_qubit_gate_count(), n);
        }
    }

    #[test]
    fn qft_on_zero_state_gives_uniform_distribution() {
        let c = qft_circuit(3);
        let probs = IdealSimulator::probabilities(&c);
        for p in probs {
            assert!((p - 1.0 / 8.0).abs() < 1e-10);
        }
    }

    #[test]
    fn qft_echo_returns_input_state() {
        for seed in 0..5u64 {
            let (c, x) = qft_echo_circuit(3, RngSeed(seed));
            let probs = IdealSimulator::probabilities(&c);
            assert!(
                (probs[x] - 1.0).abs() < 1e-9,
                "seed {seed}: prob = {}",
                probs[x]
            );
        }
    }

    #[test]
    fn unitary_pools_contain_unitaries() {
        for w in Workload::all() {
            let pool = unitary_pool(w, 5, RngSeed(11));
            assert!(!pool.is_empty(), "{}", w.name());
            for u in &pool {
                assert_eq!(u.dim(), 4);
                assert!(u.is_unitary(1e-9), "{}", w.name());
            }
        }
    }

    #[test]
    fn qaoa_unitaries_are_diagonal() {
        for u in qaoa_unitaries(5, RngSeed(13)) {
            for r in 0..4 {
                for c in 0..4 {
                    if r != c {
                        assert!(u[(r, c)].norm() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn workload_names() {
        assert_eq!(Workload::QuantumVolume.name(), "QV");
        assert_eq!(Workload::all().len(), 5);
    }

    #[test]
    fn random_graph_edges_are_distinct() {
        let mut rng = RngSeed(17).rng();
        let edges = random_graph_edges(6, 10, &mut rng);
        assert_eq!(edges.len(), 10);
        for (i, e) in edges.iter().enumerate() {
            for other in &edges[i + 1..] {
                assert_ne!(e, other);
            }
        }
    }
}
