//! Benchmark applications and evaluation metrics (paper §VI).
//!
//! The paper evaluates instruction sets on four application classes that
//! "cover the main types of circuits studied for QC systems":
//!
//! * **Quantum Volume (QV)** — random SU(4) layers ([`workloads::qv_circuit`]),
//!   scored by heavy-output probability ([`metrics::heavy_output_probability`]).
//! * **QAOA MaxCut** — random ZZ cost layers interleaved with X mixers
//!   ([`workloads::qaoa_circuit`]), scored by cross-entropy difference
//!   ([`metrics::cross_entropy_difference`]).
//! * **1-D Fermi–Hubbard Trotter steps** ([`workloads::fermi_hubbard_circuit`]),
//!   scored by linear XEB fidelity ([`metrics::linear_xeb_fidelity`]).
//! * **QFT** ([`workloads::qft_echo_circuit`]), scored by success rate
//!   ([`metrics::success_rate`]).
//!
//! [`workloads`] also exposes pools of *two-qubit unitaries* drawn from each
//! application (QV, QAOA, QFT, FH, SWAP) for the Fig. 8 expressivity heatmaps.

#![warn(missing_docs)]

pub mod metrics;
pub mod workloads;

pub use metrics::{
    cross_entropy_difference, heavy_output_probability, linear_xeb_fidelity, success_rate,
};
pub use workloads::{
    fermi_hubbard_circuit, qaoa_circuit, qft_circuit, qft_echo_circuit, qv_circuit, Workload,
};
