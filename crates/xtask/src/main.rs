//! Workspace automation tasks.
//!
//! ```text
//! cargo run -p xtask -- lint               # enforce the panic-hygiene ratchet
//! cargo run -p xtask -- lint --bless       # rewrite lint-allow.txt to current counts
//! cargo run -p xtask -- check-trace <path> # validate a --trace output file
//! ```
//!
//! `lint` counts `unwrap(`/`expect(`/`panic!(` in non-test library code and
//! compares each file against the checked-in allowlist (`lint-allow.txt` at
//! the workspace root). A file may only move *down*: any count above its
//! allowance fails the build, pushing new code toward typed errors. Counts
//! below the allowance are reported so the allowance can be ratcheted down
//! with `--bless`.
//!
//! `check-trace` structurally validates a Chrome Trace Event file written by
//! `replay --trace` (or a figure binary's `--trace`): the `traceEvents`
//! array is present, events carry the complete-event fields (`ph:"X"`, `ts`,
//! `dur`, `pid`, `tid`), a `job` span exists and at least one event nests
//! under a job via `parent_id`. CI runs it after the replay trace smoke.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const ALLOWLIST: &str = "lint-allow.txt";
const PATTERNS: [&str; 3] = ["unwrap(", "expect(", "panic!("];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--bless")),
        Some("check-trace") => match args.get(1) {
            Some(path) => check_trace(Path::new(path)),
            None => {
                eprintln!("usage: cargo run -p xtask -- check-trace <path>");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--bless] | check-trace <path>");
            ExitCode::from(2)
        }
    }
}

/// Structural validation of a Chrome Trace Event file. The telemetry
/// exporter emits one complete event (`ph:"X"`) per span with `span_id` /
/// `parent_id` args; this checks the shape a Perfetto import relies on
/// without pulling in a JSON parser.
fn check_trace(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("xtask check-trace: cannot read {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut problems = Vec::new();
    if !text.starts_with("{\"traceEvents\":[") {
        problems.push("missing leading {\"traceEvents\":[ array".to_string());
    }
    let events = text.matches("{\"name\":").count();
    if events == 0 {
        problems.push("no trace events at all".to_string());
    }
    for field in [
        "\"ph\":\"X\"",
        "\"ts\":",
        "\"dur\":",
        "\"pid\":",
        "\"tid\":",
    ] {
        let n = text.matches(field).count();
        if n != events {
            problems.push(format!("{n} of {events} events carry {field}"));
        }
    }
    // Every event must name the span tree: a job span exists and at least
    // one stage event points back at a job span via parent_id.
    let job_ids: Vec<u64> = text
        .split("{\"name\":\"job\"")
        .skip(1)
        .filter_map(|rest| field_u64(rest, "\"span_id\":"))
        .collect();
    if job_ids.is_empty() {
        problems.push("no \"job\" span in the trace".to_string());
    } else {
        let nested = text
            .split("{\"name\":")
            .skip(1)
            .filter(|e| !e.starts_with("\"job\""))
            .filter_map(|e| field_u64(e, "\"parent_id\":"))
            .any(|parent| job_ids.contains(&parent));
        if !nested {
            problems.push("no event nests under a job span via parent_id".to_string());
        }
    }
    if problems.is_empty() {
        eprintln!(
            "xtask check-trace: ok — {events} events, {} job spans in {}",
            job_ids.len(),
            path.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask check-trace: {} is not a valid trace:",
            path.display()
        );
        for problem in &problems {
            eprintln!("  {problem}");
        }
        ExitCode::FAILURE
    }
}

/// Reads the unsigned integer immediately following `key` in `text`
/// (within the current event object), if any.
fn field_u64(text: &str, key: &str) -> Option<u64> {
    let rest = &text[text.find(key)? + key.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn lint(bless: bool) -> ExitCode {
    let root = workspace_root();
    let counts = scan_workspace(&root);
    let allow_path = root.join(ALLOWLIST);
    if bless {
        let mut out = String::from(
            "# Panic-hygiene ratchet: `<count> <file>` pairs counting unwrap(/expect(/panic!(\n\
             # in non-test library code. Counts may only decrease; regenerate with\n\
             # `cargo run -p xtask -- lint --bless` after burning one down.\n",
        );
        for (file, count) in &counts {
            out.push_str(&format!("{count} {file}\n"));
        }
        std::fs::write(&allow_path, out).expect("write allowlist");
        eprintln!(
            "xtask lint: blessed {} files, {} findings total",
            counts.len(),
            counts.values().sum::<usize>()
        );
        return ExitCode::SUCCESS;
    }

    let allowed = read_allowlist(&allow_path);
    let mut regressions = Vec::new();
    let mut slack = Vec::new();
    for (file, &count) in &counts {
        let budget = allowed.get(file).copied().unwrap_or(0);
        if count > budget {
            regressions.push(format!("{file}: {count} findings (allowance {budget})"));
        } else if count < budget {
            slack.push(format!("{file}: {count} findings (allowance {budget})"));
        }
    }
    for (file, budget) in &allowed {
        if !counts.contains_key(file) && *budget > 0 {
            slack.push(format!("{file}: 0 findings (allowance {budget})"));
        }
    }

    if !slack.is_empty() {
        eprintln!("xtask lint: allowance slack (ratchet down with --bless):");
        for line in &slack {
            eprintln!("  {line}");
        }
    }
    if regressions.is_empty() {
        eprintln!(
            "xtask lint: ok — {} findings across {} files, none over allowance",
            counts.values().sum::<usize>(),
            counts.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: panic-hygiene regressions (prefer typed errors):");
        for line in &regressions {
            eprintln!("  {line}");
        }
        ExitCode::FAILURE
    }
}

/// Counts pattern hits per workspace-relative file, library code only: every
/// `crates/*/src/**/*.rs` except binaries (`src/bin/`), this tool itself and
/// anything from the first `#[cfg(test)]` marker onward (test modules sit at
/// the end of files in this workspace).
fn scan_workspace(root: &Path) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    let crates = root.join("crates");
    let mut stack = vec![crates.clone()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                let name = entry.file_name();
                // Only descend into src/ trees; skip bin targets and xtask.
                let is_crate_root = path.parent() == Some(crates.as_path());
                let keep = if is_crate_root {
                    name != "xtask"
                } else {
                    name != "bin" && path.components().any(|c| c.as_os_str() == "src")
                        || name == "src"
                };
                if keep {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                let count = count_findings(&path);
                if count > 0 {
                    let rel = path
                        .strip_prefix(root)
                        .unwrap_or(&path)
                        .to_string_lossy()
                        .replace('\\', "/");
                    counts.insert(rel, count);
                }
            }
        }
    }
    counts
}

fn count_findings(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    let mut count = 0;
    for line in text.lines() {
        if line.contains("#[cfg(test)]") {
            break;
        }
        let code = line.split("//").next().unwrap_or(line);
        count += PATTERNS
            .iter()
            .map(|p| code.matches(p).count())
            .sum::<usize>();
    }
    count
}

fn read_allowlist(path: &Path) -> BTreeMap<String, usize> {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!(
            "xtask lint: missing {} — generate it with `cargo run -p xtask -- lint --bless`",
            path.display()
        );
        return BTreeMap::new();
    };
    let mut allowed = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((count, file)) = line.split_once(' ') {
            if let Ok(count) = count.parse::<usize>() {
                allowed.insert(file.trim().to_string(), count);
            }
        }
    }
    allowed
}

/// The workspace root: this file lives at `crates/xtask/src/main.rs`.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask sits two levels under the workspace root")
        .to_path_buf()
}
