//! Validation of the Monte-Carlo trajectory simulator against the exact
//! density-matrix evolution for small circuits (the DESIGN.md "trajectory vs
//! density-matrix agreement" ablation).

use circuit::{Circuit, Operation};
use device::DeviceModel;
use qmath::RngSeed;
use sim::{DensityMatrix, NoiseModel, NoisySimulator};

fn bell_plus_rotation() -> Circuit {
    let mut c = Circuit::new(2);
    c.push(Operation::h(0));
    c.push(Operation::cnot(0, 1));
    c.push(Operation::rx(1, 0.6));
    c.measure_all();
    c
}

fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
        / 2.0
}

#[test]
fn trajectories_converge_to_the_density_matrix_distribution() {
    let device = DeviceModel::ideal(2, 0.93);
    let mut noise = NoiseModel::from_device(&device);
    noise.with_readout_error = false; // readout acts classically, not on rho
    let circuit = bell_plus_rotation();

    let dm = DensityMatrix::evolve(&circuit, &noise);
    let exact = dm.probabilities();

    let counts = NoisySimulator::new(noise).run(&circuit, 6000, RngSeed(1));
    let empirical: Vec<f64> = (0..4).map(|i| counts.probability(i)).collect();

    let tv = total_variation(&exact, &empirical);
    assert!(
        tv < 0.03,
        "total variation distance {tv}, exact {exact:?}, empirical {empirical:?}"
    );
}

#[test]
fn relaxation_noise_also_agrees() {
    let device = DeviceModel::sycamore(RngSeed(2));
    let region: Vec<usize> = vec![0, 1];
    let sub = device.subdevice(&region);
    let mut noise = NoiseModel::from_device(&sub);
    noise.with_readout_error = false;
    let mut circuit = Circuit::new(2);
    circuit.push(Operation::x(0));
    for _ in 0..10 {
        circuit.push(Operation::x(1));
        circuit.push(Operation::x(1));
    }
    circuit.measure_all();

    let exact = DensityMatrix::evolve(&circuit, &noise).probabilities();
    let counts = NoisySimulator::new(noise).run(&circuit, 6000, RngSeed(3));
    let empirical: Vec<f64> = (0..4).map(|i| counts.probability(i)).collect();
    let tv = total_variation(&exact, &empirical);
    assert!(tv < 0.03, "total variation distance {tv}");
}

#[test]
fn ghz_trajectories_match_density_matrix_within_tolerance() {
    // Three-qubit noisy GHZ: the Monte-Carlo trajectory sampler
    // (`sim::runner`) must reproduce the exact density-matrix distribution
    // (`sim::density`) within a small total-variation tolerance.
    let device = DeviceModel::ideal(3, 0.95);
    let mut noise = NoiseModel::from_device(&device);
    noise.with_readout_error = false; // readout acts classically, not on rho
    let mut ghz = Circuit::new(3);
    ghz.push(Operation::h(0));
    ghz.push(Operation::cnot(0, 1));
    ghz.push(Operation::cnot(1, 2));
    ghz.measure_all();

    let exact = DensityMatrix::evolve(&ghz, &noise).probabilities();
    assert!((exact.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    // Noise leaks weight off |000> and |111>, but they must stay dominant.
    assert!(exact[0] > 0.35 && exact[7] > 0.35, "GHZ peaks: {exact:?}");

    let counts = NoisySimulator::new(noise).run(&ghz, 8000, RngSeed(21));
    let empirical: Vec<f64> = (0..8).map(|i| counts.probability(i)).collect();
    let tv = total_variation(&exact, &empirical);
    assert!(
        tv < 0.025,
        "total variation distance {tv}, exact {exact:?}, empirical {empirical:?}"
    );
}

#[test]
fn purity_decreases_monotonically_with_error_rate() {
    let circuit = bell_plus_rotation();
    let mut last_purity = 1.1;
    for fidelity in [1.0, 0.99, 0.95, 0.90] {
        let device = DeviceModel::ideal(2, fidelity);
        let mut noise = NoiseModel::from_device(&device);
        noise.with_readout_error = false;
        let dm = DensityMatrix::evolve(&circuit, &noise);
        assert!(dm.purity() <= last_purity + 1e-9, "fidelity {fidelity}");
        assert!((dm.trace() - 1.0).abs() < 1e-9);
        last_purity = dm.purity();
    }
}
