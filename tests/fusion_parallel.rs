//! Validation of gate fusion (`FusionPolicy`) and parallel amplitude sweeps:
//! fused lowerings must agree with unfused ones to 1e-12 on random circuits,
//! `Safe` fusion must leave noisy counts bit-identical, `Aggressive` fusion
//! must stay within the statistical TVD bound (and be exact when every
//! channel is identity), composed Kraus sets must stay complete, and
//! amplitude-sweep threading must be invisible in the results at and around
//! `PARALLEL_SWEEP_MIN_QUBITS`.

use circuit::{Circuit, Operation};
use device::{DeviceModel, EdgeCalibration, GateDurations, QubitCalibration, Topology};
use proptest::prelude::*;
use qmath::{haar_random_su4, Mat4, RngSeed};
use rand::Rng;
use sim::{
    amplitude_damping_kraus, dephasing_kraus, depolarizing_1q, depolarizing_2q, ExecutionEngine,
    FusionPolicy, Kraus2q, NoiseModel, PrecompiledCircuit, SeedPolicy, SimJob,
    PARALLEL_SWEEP_MIN_QUBITS,
};
use std::collections::BTreeMap;
use std::f64::consts::{PI, TAU};
use verify::{Artifact, DistributionArtifact, Verifier};

/// A pseudo-random gate soup drawn from the full 1q/2q vocabulary, designed
/// to produce plenty of fusable runs (repeated 1q rotations, back-to-back
/// entanglers in both orientations).
fn random_circuit(num_qubits: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = RngSeed(seed).rng();
    let mut c = Circuit::new(num_qubits);
    for _ in 0..depth {
        let q = rng.gen_range(0..num_qubits);
        match rng.gen_range(0..8) {
            0 => c.push(Operation::h(q)),
            1 => c.push(Operation::x(q)),
            2 => c.push(Operation::rx(q, rng.gen_range(0.0..TAU))),
            3 => c.push(Operation::rz(q, rng.gen_range(0.0..TAU))),
            4 => c.push(Operation::u3(
                q,
                rng.gen_range(0.0..PI),
                rng.gen_range(0.0..TAU),
                rng.gen_range(0.0..TAU),
            )),
            kind => {
                let p = (q + 1 + rng.gen_range(0..num_qubits - 1)) % num_qubits;
                match kind {
                    5 => c.push(Operation::cnot(q, p)),
                    6 => c.push(Operation::cz(q, p)),
                    _ => c.push(Operation::cphase(q, p, rng.gen_range(0.0..PI))),
                }
            }
        }
    }
    c.measure_all();
    c
}

/// An entangling circuit that is cheap at 13–15 qubits: one rotation layer,
/// a CNOT chain, and a second rotation layer.
fn wide_circuit(num_qubits: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for q in 0..num_qubits {
        c.push(Operation::rx(q, 0.1 + q as f64 * 0.2));
    }
    for q in 1..num_qubits {
        c.push(Operation::cnot(q - 1, q));
    }
    for q in 0..num_qubits {
        c.push(Operation::rz(q, 0.4 + q as f64 * 0.1));
    }
    c.measure_all();
    c
}

/// A 2q-error-only noise model: 1q gates stay noise-free so `Safe` fusion has
/// channels to fuse across, while the 2q depolarizing channels still consume
/// RNG exactly as in the unfused lowering.
fn two_qubit_noise(num_qubits: usize, fidelity: f64) -> NoiseModel {
    let mut noise = NoiseModel::from_device(&DeviceModel::ideal(num_qubits, fidelity));
    noise.with_relaxation = false;
    noise
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unrestricted ideal fusion reproduces the unfused final state to 1e-12
    /// on random circuits over the full gate vocabulary.
    #[test]
    fn fused_ideal_state_matches_unfused(
        seed in 0u64..10_000,
        num_qubits in 2usize..6,
        depth in 1usize..60,
    ) {
        let c = random_circuit(num_qubits, depth, seed);
        let fused = PrecompiledCircuit::ideal_with_fusion(&c, FusionPolicy::Safe);
        let unfused = PrecompiledCircuit::ideal(&c);
        prop_assert!(fused.ops().len() + fused.fused_ops() == unfused.ops().len());
        let a = fused.run_trajectory(&mut RngSeed(seed).rng());
        let b = unfused.run_trajectory(&mut RngSeed(seed).rng());
        for i in 0..(1usize << num_qubits) {
            prop_assert!(
                (a.amplitude(i) - b.amplitude(i)).norm() < 1e-12,
                "amplitude {} diverged: {:?} vs {:?}",
                i,
                a.amplitude(i),
                b.amplitude(i)
            );
        }
    }

    /// `Safe` fusion leaves noisy engine counts bit-identical to the unfused
    /// lowering, under both seed policies.
    #[test]
    fn safe_fusion_counts_are_bit_identical_to_unfused(
        seed in 0u64..10_000,
        shots in 1usize..200,
        fid_step in 0usize..3,
        policy_step in 0usize..2,
    ) {
        let fidelity = [0.9, 0.96, 0.995][fid_step];
        let policy = [SeedPolicy::PerShard, SeedPolicy::PerShot][policy_step];
        let circuit = random_circuit(3, 40, seed);
        let noise = two_qubit_noise(3, fidelity);
        let job = SimJob::noisy(circuit, noise, shots, RngSeed(seed ^ 0xC3));
        let run = |fusion| {
            ExecutionEngine::builder()
                .threads(2)
                .seed_policy(policy)
                .fusion(fusion)
                .build()
                .unwrap()
                .run_job(&job)
        };
        let unfused = run(FusionPolicy::Off);
        let fused = run(FusionPolicy::Safe);
        prop_assert_eq!(unfused.report.fused_ops, 0);
        prop_assert_eq!(&fused.counts, &unfused.counts);
    }
}

/// A noise model whose every channel is *exactly* the single-operator
/// identity: perfect gate fidelities remove the depolarizing channels, and
/// zero gate durations collapse thermal relaxation to `[I]` (the zero-weight
/// Kraus branches are pruned during channel composition).
fn identity_noise(num_qubits: usize) -> NoiseModel {
    let mut topology = Topology::new(num_qubits);
    for a in 0..num_qubits {
        for b in (a + 1)..num_qubits {
            topology.add_edge(a, b);
        }
    }
    let mut edges = BTreeMap::new();
    for (a, b) in topology.edges() {
        edges.insert((a, b), EdgeCalibration::new(1.0));
    }
    let qubits = vec![QubitCalibration::new(50.0, 40.0, 0.0, 1.0); num_qubits];
    let durations = GateDurations {
        one_qubit_ns: 0.0,
        two_qubit_ns: 0.0,
        measurement_ns: 0.0,
    };
    NoiseModel::from_device(&DeviceModel::new(
        "identity-noise",
        topology,
        edges,
        qubits,
        durations,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random chains of the channel-algebra operations Aggressive fusion
    /// performs (composition, 1q→2q embedding, unitary conjugation, factor
    /// swap) keep the Kraus completeness relation `Σ K†K = I` satisfied to
    /// 1e-12 — the tolerance the `channel/composition` verify rule enforces.
    #[test]
    fn composed_kraus_sets_stay_complete(
        seed in 0u64..10_000,
        steps in 1usize..6,
    ) {
        let mut rng = RngSeed(seed).rng();
        let mut channel: Kraus2q = match rng.gen_range(0..3) {
            0 => depolarizing_2q(rng.gen_range(0.0..1.0)),
            1 => depolarizing_1q(rng.gen_range(0.0..1.0)).embed_msb(),
            _ => amplitude_damping_kraus(rng.gen_range(0.0..1.0)).embed_lsb(),
        };
        for _ in 0..steps {
            channel = match rng.gen_range(0..4) {
                0 => channel.then(&dephasing_kraus(rng.gen_range(0.0..0.5)).embed_msb()),
                1 => channel.then(&amplitude_damping_kraus(rng.gen_range(0.0..1.0)).embed_lsb()),
                2 => channel.conjugate_by(&haar_random_su4(&mut rng)),
                _ => channel.swap_factors(),
            };
        }
        let mut sum = Mat4::zeros();
        for k in channel.operators() {
            sum = sum + k.dagger() * *k;
        }
        prop_assert!(
            sum.max_abs_diff(&Mat4::identity()) < 1e-12,
            "completeness defect {} after {} steps",
            sum.max_abs_diff(&Mat4::identity()),
            steps
        );
    }

    /// When every attached channel is exactly identity, Aggressive fusion's
    /// carried-channel rewrite is a no-op on the RNG stream: counts match
    /// `Safe` (and `Off`) bit for bit, not just in distribution.
    #[test]
    fn aggressive_equals_safe_exactly_on_identity_channels(
        seed in 0u64..10_000,
        shots in 1usize..150,
    ) {
        let circuit = random_circuit(4, 40, seed);
        let job = SimJob::noisy(circuit, identity_noise(4), shots, RngSeed(seed ^ 0xA5));
        let run = |fusion| {
            ExecutionEngine::builder()
                .fusion(fusion)
                .build()
                .unwrap()
                .run_job(&job)
        };
        let off = run(FusionPolicy::Off);
        let safe = run(FusionPolicy::Safe);
        let aggressive = run(FusionPolicy::Aggressive);
        prop_assert_eq!(&safe.counts, &off.counts);
        prop_assert_eq!(&aggressive.counts, &off.counts);
    }
}

#[test]
fn aggressive_vs_safe_tvd_is_within_the_analytic_bound() {
    // Seed-pinned statistical equivalence: Aggressive fusion changes the RNG
    // stream, so counts are compared through the `fusion/tvd-bound` rule
    // instead of bit-identity. The distributions are identical by
    // construction, so the observed TVD is pure sampling noise and must stay
    // inside the two-sample bound.
    let circuit = random_circuit(3, 40, 23);
    let noise = two_qubit_noise(3, 0.95);
    let job = SimJob::noisy(circuit, noise, 600, RngSeed(29));
    let run = |fusion| {
        ExecutionEngine::builder()
            .fusion(fusion)
            .build()
            .unwrap()
            .run_job(&job)
    };
    let safe = run(FusionPolicy::Safe);
    let aggressive = run(FusionPolicy::Aggressive);
    assert!(
        aggressive.report.fused_ops > safe.report.fused_ops,
        "aggressive fusion should fuse deeper on a noisy circuit ({} vs {})",
        aggressive.report.fused_ops,
        safe.report.fused_ops
    );
    let counts_a: Vec<(usize, usize)> = safe.counts.iter().collect();
    let counts_b: Vec<(usize, usize)> = aggressive.counts.iter().collect();
    let artifact = DistributionArtifact {
        num_qubits: 3,
        label_a: "safe-fusion sample",
        label_b: "aggressive-fusion sample",
        counts_a: &counts_a,
        counts_b: &counts_b,
    };
    let report = Verifier::statistical().run(&Artifact::Distributions(&artifact));
    assert!(!report.has_errors(), "{:?}", report.diagnostics());
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.rule() == "fusion/tvd-bound"),
        "the TVD rule should report its margin"
    );
}

#[test]
fn thread_count_is_invisible_at_and_around_the_sweep_threshold() {
    // One qubit below the threshold the engine stays shot-parallel; at and
    // above it, it flips to amplitude-parallel sweeps. Either way counts must
    // be bit-identical for 1, 2 and 8 threads.
    for num_qubits in [
        PARALLEL_SWEEP_MIN_QUBITS - 1,
        PARALLEL_SWEEP_MIN_QUBITS,
        PARALLEL_SWEEP_MIN_QUBITS + 1,
    ] {
        let job = SimJob::ideal(wide_circuit(num_qubits), 300, RngSeed(77));
        let reference = ExecutionEngine::builder()
            .threads(1)
            .build()
            .unwrap()
            .run_job(&job);
        for threads in [2usize, 8] {
            let parallel = ExecutionEngine::builder()
                .threads(threads)
                .build()
                .unwrap()
                .run_job(&job);
            assert_eq!(
                parallel.counts, reference.counts,
                "n = {num_qubits}, threads = {threads}"
            );
            if num_qubits >= PARALLEL_SWEEP_MIN_QUBITS {
                assert_eq!(
                    parallel.report.threads, threads,
                    "amplitude-parallel regime"
                );
            }
        }
    }
}

#[test]
fn noisy_trajectories_are_bit_identical_across_sweep_threads() {
    // Above the threshold the engine runs noisy shots sequentially with
    // threaded sweeps; the Kraus sampling RNG stream must be untouched by the
    // thread count, fused or not.
    let num_qubits = PARALLEL_SWEEP_MIN_QUBITS;
    let circuit = wide_circuit(num_qubits);
    let noise = two_qubit_noise(num_qubits, 0.97);
    let job = SimJob::noisy(circuit, noise, 8, RngSeed(41));
    let run = |threads, fusion| {
        ExecutionEngine::builder()
            .threads(threads)
            .fusion(fusion)
            .build()
            .unwrap()
            .run_job(&job)
    };
    let reference = run(1, FusionPolicy::Off);
    for threads in [1usize, 8] {
        for fusion in [FusionPolicy::Off, FusionPolicy::Safe] {
            let result = run(threads, fusion);
            assert_eq!(
                result.counts, reference.counts,
                "threads = {threads}, fusion = {fusion:?}"
            );
        }
    }
}

#[test]
fn fusion_is_reported_by_the_engine() {
    // The wide circuit interleaves rotation layers with a CNOT chain, so the
    // ideal lowering has plenty of adjacent fusable pairs.
    let job = SimJob::ideal(wide_circuit(4), 50, RngSeed(5));
    let fused = ExecutionEngine::builder()
        .fusion(FusionPolicy::Safe)
        .build()
        .unwrap()
        .run_job(&job);
    let unfused = ExecutionEngine::builder()
        .fusion(FusionPolicy::Off)
        .build()
        .unwrap()
        .run_job(&job);
    assert!(
        fused.report.fused_ops > 0,
        "expected fusion on the ideal path"
    );
    assert_eq!(unfused.report.fused_ops, 0);
    assert_eq!(fused.counts, unfused.counts);
}
