//! Validation of gate fusion (`FusionPolicy`) and parallel amplitude sweeps:
//! fused lowerings must agree with unfused ones to 1e-12 on random circuits,
//! `Safe` fusion must leave noisy counts bit-identical, and amplitude-sweep
//! threading must be invisible in the results at and around
//! `PARALLEL_SWEEP_MIN_QUBITS`.

use circuit::{Circuit, Operation};
use device::DeviceModel;
use proptest::prelude::*;
use qmath::RngSeed;
use rand::Rng;
use sim::{
    ExecutionEngine, FusionPolicy, NoiseModel, PrecompiledCircuit, SeedPolicy, SimJob,
    PARALLEL_SWEEP_MIN_QUBITS,
};
use std::f64::consts::{PI, TAU};

/// A pseudo-random gate soup drawn from the full 1q/2q vocabulary, designed
/// to produce plenty of fusable runs (repeated 1q rotations, back-to-back
/// entanglers in both orientations).
fn random_circuit(num_qubits: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = RngSeed(seed).rng();
    let mut c = Circuit::new(num_qubits);
    for _ in 0..depth {
        let q = rng.gen_range(0..num_qubits);
        match rng.gen_range(0..8) {
            0 => c.push(Operation::h(q)),
            1 => c.push(Operation::x(q)),
            2 => c.push(Operation::rx(q, rng.gen_range(0.0..TAU))),
            3 => c.push(Operation::rz(q, rng.gen_range(0.0..TAU))),
            4 => c.push(Operation::u3(
                q,
                rng.gen_range(0.0..PI),
                rng.gen_range(0.0..TAU),
                rng.gen_range(0.0..TAU),
            )),
            kind => {
                let p = (q + 1 + rng.gen_range(0..num_qubits - 1)) % num_qubits;
                match kind {
                    5 => c.push(Operation::cnot(q, p)),
                    6 => c.push(Operation::cz(q, p)),
                    _ => c.push(Operation::cphase(q, p, rng.gen_range(0.0..PI))),
                }
            }
        }
    }
    c.measure_all();
    c
}

/// An entangling circuit that is cheap at 13–15 qubits: one rotation layer,
/// a CNOT chain, and a second rotation layer.
fn wide_circuit(num_qubits: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for q in 0..num_qubits {
        c.push(Operation::rx(q, 0.1 + q as f64 * 0.2));
    }
    for q in 1..num_qubits {
        c.push(Operation::cnot(q - 1, q));
    }
    for q in 0..num_qubits {
        c.push(Operation::rz(q, 0.4 + q as f64 * 0.1));
    }
    c.measure_all();
    c
}

/// A 2q-error-only noise model: 1q gates stay noise-free so `Safe` fusion has
/// channels to fuse across, while the 2q depolarizing channels still consume
/// RNG exactly as in the unfused lowering.
fn two_qubit_noise(num_qubits: usize, fidelity: f64) -> NoiseModel {
    let mut noise = NoiseModel::from_device(&DeviceModel::ideal(num_qubits, fidelity));
    noise.with_relaxation = false;
    noise
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unrestricted ideal fusion reproduces the unfused final state to 1e-12
    /// on random circuits over the full gate vocabulary.
    #[test]
    fn fused_ideal_state_matches_unfused(
        seed in 0u64..10_000,
        num_qubits in 2usize..6,
        depth in 1usize..60,
    ) {
        let c = random_circuit(num_qubits, depth, seed);
        let fused = PrecompiledCircuit::ideal_with_fusion(&c, FusionPolicy::Safe);
        let unfused = PrecompiledCircuit::ideal(&c);
        prop_assert!(fused.ops().len() + fused.fused_ops() == unfused.ops().len());
        let a = fused.run_trajectory(&mut RngSeed(seed).rng());
        let b = unfused.run_trajectory(&mut RngSeed(seed).rng());
        for i in 0..(1usize << num_qubits) {
            prop_assert!(
                (a.amplitude(i) - b.amplitude(i)).norm() < 1e-12,
                "amplitude {} diverged: {:?} vs {:?}",
                i,
                a.amplitude(i),
                b.amplitude(i)
            );
        }
    }

    /// `Safe` fusion leaves noisy engine counts bit-identical to the unfused
    /// lowering, under both seed policies.
    #[test]
    fn safe_fusion_counts_are_bit_identical_to_unfused(
        seed in 0u64..10_000,
        shots in 1usize..200,
        fid_step in 0usize..3,
        policy_step in 0usize..2,
    ) {
        let fidelity = [0.9, 0.96, 0.995][fid_step];
        let policy = [SeedPolicy::PerShard, SeedPolicy::PerShot][policy_step];
        let circuit = random_circuit(3, 40, seed);
        let noise = two_qubit_noise(3, fidelity);
        let job = SimJob::noisy(circuit, noise, shots, RngSeed(seed ^ 0xC3));
        let run = |fusion| {
            ExecutionEngine::builder()
                .threads(2)
                .seed_policy(policy)
                .fusion(fusion)
                .build()
                .unwrap()
                .run_job(&job)
        };
        let unfused = run(FusionPolicy::Off);
        let fused = run(FusionPolicy::Safe);
        prop_assert_eq!(unfused.report.fused_ops, 0);
        prop_assert_eq!(&fused.counts, &unfused.counts);
    }
}

#[test]
fn thread_count_is_invisible_at_and_around_the_sweep_threshold() {
    // One qubit below the threshold the engine stays shot-parallel; at and
    // above it, it flips to amplitude-parallel sweeps. Either way counts must
    // be bit-identical for 1, 2 and 8 threads.
    for num_qubits in [
        PARALLEL_SWEEP_MIN_QUBITS - 1,
        PARALLEL_SWEEP_MIN_QUBITS,
        PARALLEL_SWEEP_MIN_QUBITS + 1,
    ] {
        let job = SimJob::ideal(wide_circuit(num_qubits), 300, RngSeed(77));
        let reference = ExecutionEngine::builder()
            .threads(1)
            .build()
            .unwrap()
            .run_job(&job);
        for threads in [2usize, 8] {
            let parallel = ExecutionEngine::builder()
                .threads(threads)
                .build()
                .unwrap()
                .run_job(&job);
            assert_eq!(
                parallel.counts, reference.counts,
                "n = {num_qubits}, threads = {threads}"
            );
            if num_qubits >= PARALLEL_SWEEP_MIN_QUBITS {
                assert_eq!(
                    parallel.report.threads, threads,
                    "amplitude-parallel regime"
                );
            }
        }
    }
}

#[test]
fn noisy_trajectories_are_bit_identical_across_sweep_threads() {
    // Above the threshold the engine runs noisy shots sequentially with
    // threaded sweeps; the Kraus sampling RNG stream must be untouched by the
    // thread count, fused or not.
    let num_qubits = PARALLEL_SWEEP_MIN_QUBITS;
    let circuit = wide_circuit(num_qubits);
    let noise = two_qubit_noise(num_qubits, 0.97);
    let job = SimJob::noisy(circuit, noise, 8, RngSeed(41));
    let run = |threads, fusion| {
        ExecutionEngine::builder()
            .threads(threads)
            .fusion(fusion)
            .build()
            .unwrap()
            .run_job(&job)
    };
    let reference = run(1, FusionPolicy::Off);
    for threads in [1usize, 8] {
        for fusion in [FusionPolicy::Off, FusionPolicy::Safe] {
            let result = run(threads, fusion);
            assert_eq!(
                result.counts, reference.counts,
                "threads = {threads}, fusion = {fusion:?}"
            );
        }
    }
}

#[test]
fn fusion_is_reported_by_the_engine() {
    // The wide circuit interleaves rotation layers with a CNOT chain, so the
    // ideal lowering has plenty of adjacent fusable pairs.
    let job = SimJob::ideal(wide_circuit(4), 50, RngSeed(5));
    let fused = ExecutionEngine::builder()
        .fusion(FusionPolicy::Safe)
        .build()
        .unwrap()
        .run_job(&job);
    let unfused = ExecutionEngine::builder()
        .fusion(FusionPolicy::Off)
        .build()
        .unwrap()
        .run_job(&job);
    assert!(
        fused.report.fused_ops > 0,
        "expected fusion on the ideal path"
    );
    assert_eq!(unfused.report.fused_ops, 0);
    assert_eq!(fused.counts, unfused.counts);
}
