//! Integration tests for the compile-and-simulate job server: panic
//! isolation inside a mixed batch, queue-full backpressure, and per-tenant
//! cache namespaces under concurrent load.

use std::sync::mpsc;

use compiler::{Compiler, CompilerOptions};
use device::DeviceModel;
use qmath::RngSeed;
use server::{JobOp, JobRequest, JobServer, ServerError, WorkloadKind};

fn test_device() -> DeviceModel {
    DeviceModel::aspen8(RngSeed(1))
}

fn test_server(workers: usize, queue_capacity: usize) -> JobServer {
    JobServer::builder(test_device())
        .workers(workers)
        .queue_capacity(queue_capacity)
        .options(CompilerOptions::sweep())
        .build()
        .unwrap()
}

fn request(tenant: &str, seed: u64, op: JobOp) -> JobRequest {
    JobRequest {
        tenant: tenant.into(),
        set: "S3".into(),
        workload: WorkloadKind::Qv,
        qubits: 3,
        seed,
        op,
        fusion: None,
    }
}

/// A panicking job inside a batch must neither abort the process nor corrupt
/// the other jobs' results: every healthy job's response is compared against
/// ground truth from a standalone compiler.
#[test]
fn panicking_jobs_are_isolated_from_the_rest_of_the_batch() {
    let server = test_server(2, 64);

    let mut healthy = Vec::new();
    let mut bombs = Vec::new();
    for seed in 1..=4u64 {
        healthy.push((
            seed,
            server
                .submit_request(request("batch", seed, JobOp::Compile))
                .unwrap(),
        ));
        bombs.push(
            server
                .submit_task(move || panic!("bomb {seed} detonated"))
                .unwrap(),
        );
    }

    // Ground truth: the same workloads through a standalone compiler.
    let reference = Compiler::for_device(test_device())
        .instruction_set_named("S3")
        .options(CompilerOptions {
            threads: 1,
            ..CompilerOptions::sweep()
        })
        .build()
        .unwrap();
    for (seed, ticket) in healthy {
        let response = ticket.wait().unwrap();
        let expected = reference
            .compile(&apps::workloads::qv_circuit(3, RngSeed(seed)))
            .unwrap();
        assert_eq!(response.two_qubit_gates, expected.two_qubit_gate_count());
        assert_eq!(response.swap_count, expected.swap_count);
    }
    for (i, bomb) in bombs.into_iter().enumerate() {
        match bomb.wait() {
            Err(ServerError::Panicked { message }) => {
                assert!(
                    message.contains(&format!("bomb {} detonated", i + 1)),
                    "panic message {message:?} lost the original payload"
                );
            }
            other => panic!("expected a Panicked error, got {other:?}"),
        }
    }

    let metrics = server.metrics();
    assert_eq!(metrics.panicked, 4);
    assert_eq!(metrics.completed, 4);
    // The pool survived: a fresh job still completes.
    let after = server
        .submit_request(request("batch", 9, JobOp::Compile))
        .unwrap();
    assert!(after.wait().is_ok());
}

/// Filling the bounded queue makes further submissions fail fast with
/// `Overloaded`; draining the queue restores admission.
#[test]
fn full_queue_rejects_with_overloaded_backpressure() {
    let server = test_server(1, 2);

    // Park the single worker on a job that blocks until released, so
    // subsequent submissions stay queued.
    let (release, gate) = mpsc::channel::<()>();
    let parked = server
        .submit_task(move || {
            gate.recv().expect("test releases the gate");
            Err(ServerError::ShutDown) // any placeholder result
        })
        .unwrap();
    // Wait until the worker has claimed the gate job (queue drains to 0).
    while server.metrics().queue_depth > 0 {
        std::thread::yield_now();
    }

    let queued: Vec<_> = (0..2)
        .map(|seed| {
            server
                .submit_request(request("bp", seed, JobOp::Compile))
                .unwrap()
        })
        .collect();
    match server.submit_request(request("bp", 99, JobOp::Compile)) {
        Err(ServerError::Overloaded { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(server.metrics().rejected, 1);

    release.send(()).unwrap();
    assert!(parked.wait().is_err()); // the placeholder result above
    for ticket in queued {
        assert!(ticket.wait().is_ok());
    }
    // Capacity is available again.
    assert!(server
        .submit_request(request("bp", 100, JobOp::Compile))
        .is_ok());
}

/// Two tenants replaying the same seed-pinned mix concurrently get isolated
/// cache namespaces: identical deterministic responses, but all cache
/// traffic stays within each tenant (both pay their own cold misses, and a
/// replay hits only the tenant's own cache).
#[test]
fn tenant_caches_are_isolated_under_concurrent_load() {
    let server = test_server(4, 128);
    let seeds = [1u64, 2, 3];

    let submit_mix = |tenant: &str| -> Vec<server::JobTicket> {
        seeds
            .iter()
            .map(|&seed| {
                server
                    .submit_request(request(tenant, seed, JobOp::Simulate { shots: 32 }))
                    .unwrap()
            })
            .collect()
    };

    // First pass: both tenants' mixes are in flight at once, interleaved
    // across the worker pool.
    let tickets_a = submit_mix("alpha");
    let tickets_b = submit_mix("beta");
    let first_a: Vec<_> = tickets_a.into_iter().map(|t| t.wait()).collect();
    let first_b: Vec<_> = tickets_b.into_iter().map(|t| t.wait()).collect();
    for (a, b) in first_a.iter().zip(&first_b) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        // Same device + same seed-pinned workload => identical compiled
        // circuits and identical seed-pinned sampling, tenant-independent.
        assert_eq!(a.two_qubit_gates, b.two_qubit_gates);
        assert_eq!(a.swap_count, b.swap_count);
        // (simulate_micros is wall-clock; only the sampled statistics are
        // deterministic.)
        let (a_sim, b_sim) = (a.sim.as_ref().unwrap(), b.sim.as_ref().unwrap());
        assert_eq!(a_sim.shots, b_sim.shots);
        assert_eq!(a_sim.distinct_outcomes, b_sim.distinct_outcomes);
    }

    let metrics = server.metrics();
    assert_eq!(metrics.tenants.len(), 2);
    let alpha = &metrics.tenants[0];
    let beta = &metrics.tenants[1];
    assert_eq!(alpha.tenant, "alpha");
    assert_eq!(beta.tenant, "beta");
    // Isolation means no free rides: beta paid its own cold misses even
    // though alpha had already compiled the identical workloads.
    assert!(alpha.misses > 0);
    assert_eq!(alpha.misses, beta.misses);

    // Second pass: a replay is served entirely from each tenant's own cache.
    let alpha_misses_before = alpha.misses;
    for result in submit_mix("alpha").into_iter().map(|t| t.wait()) {
        let response = result.unwrap();
        assert_eq!(response.cache_misses, 0);
        assert!(response.cache_hits > 0);
    }
    let metrics = server.metrics();
    assert_eq!(metrics.tenants[0].misses, alpha_misses_before);

    // The metrics endpoint reports both namespaces.
    let json = server.metrics_json();
    assert!(json.contains("\"alpha\"") && json.contains("\"beta\""));
}

/// The wire format drives the same path end to end.
#[test]
fn wire_requests_replay_deterministically() {
    let server = test_server(2, 32);
    let text = r#"{"tenant":"wire","set":"G3","workload":"qaoa","qubits":3,"seed":5,"op":"simulate","shots":50}"#;
    let first = server.submit_wire(text).unwrap().wait().unwrap();
    let second = server.submit_wire(text).unwrap().wait().unwrap();
    assert_eq!(first.set, "G3");
    assert_eq!(first.two_qubit_gates, second.two_qubit_gates);
    let (first_sim, second_sim) = (first.sim.as_ref().unwrap(), second.sim.as_ref().unwrap());
    assert_eq!(first_sim.shots, second_sim.shots);
    assert_eq!(first_sim.distinct_outcomes, second_sim.distinct_outcomes);
    // Round-trip through the response encoder stays flat JSON.
    assert!(first.encode().contains("\"shots\":50"));
}
