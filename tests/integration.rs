//! Cross-crate integration tests: gates -> circuit -> NuOp -> compiler ->
//! simulator all agreeing with each other.

use apps::workloads::{qaoa_circuit, qft_echo_circuit, qv_circuit};
use circuit::{Circuit, Operation};
use compiler::{CompiledCircuit, Compiler, CompilerOptions};
use device::DeviceModel;
use gates::{GateType, InstructionSet};
use nuop_core::{decompose_fixed, DecomposeConfig};
use qmath::{hilbert_schmidt_fidelity, RngSeed};
use sim::{IdealSimulator, NoiseModel, NoisySimulator};
use synth::minimal_cnot_count;

fn quick_options() -> CompilerOptions {
    CompilerOptions::sweep()
}

fn compile(circuit: &Circuit, device: &DeviceModel, set: &InstructionSet) -> CompiledCircuit {
    Compiler::for_device(device.clone())
        .instruction_set(set.clone())
        .options(quick_options())
        .build()
        .expect("valid compiler configuration")
        .compile(circuit)
        .expect("circuit fits device")
}

#[test]
fn nuop_matches_the_kak_lower_bound_for_cz_targets() {
    // NuOp's exact CZ decomposition of structured unitaries must use exactly
    // the minimal CNOT count predicted by the Weyl-chamber analysis.
    let cfg = DecomposeConfig::default();
    let cases = vec![
        gates::standard::cnot(),
        gates::standard::cz(),
        gates::standard::zz_interaction(0.4),
        gates::standard::cphase(0.9),
        gates::standard::swap(),
        gates::standard::iswap(),
    ];
    for target in cases {
        let kak = minimal_cnot_count(&target);
        let nuop = decompose_fixed(&target, &GateType::cz(), &cfg);
        assert_eq!(nuop.layers, kak, "target with KAK count {kak}");
        assert!(nuop.decomposition_fidelity > 0.9999);
    }
}

#[test]
fn decomposed_circuits_reproduce_application_unitaries() {
    let cfg = DecomposeConfig::default();
    let mut rng = RngSeed(11).rng();
    let target = qmath::haar_random_su4(&mut rng);
    for gate in [GateType::cz(), GateType::sqrt_iswap(), GateType::syc()] {
        let d = decompose_fixed(&target, &gate, &cfg);
        let circuit = d.to_circuit(2, 0, 1);
        let realized = circuit.unitary();
        let f = hilbert_schmidt_fidelity(&realized, &target);
        assert!(f > 0.9999, "{}: fidelity {f}", gate.name());
    }
}

#[test]
fn end_to_end_qaoa_compile_and_simulate_beats_uniform_sampling() {
    let device = DeviceModel::sycamore(RngSeed(3));
    let circuit = qaoa_circuit(4, RngSeed(4));
    let compiled = compile(&circuit, &device, &InstructionSet::g(3));
    let noise = NoiseModel::from_device(&compiled.subdevice);
    let counts = NoisySimulator::new(noise).run(&compiled.circuit, 1000, RngSeed(5));
    let logical = compiled.logical_counts(&counts);
    let ideal = IdealSimulator::probabilities(&circuit.without_measurements());
    let xed = apps::cross_entropy_difference(&logical, &ideal);
    assert!(xed > 0.2, "XED = {xed}");
}

#[test]
fn qft_echo_on_noiseless_hardware_recovers_the_input_exactly() {
    let device = DeviceModel::aspen8(RngSeed(6));
    let (circuit, expected) = qft_echo_circuit(3, RngSeed(7));
    let compiled = compile(&circuit, &device, &InstructionSet::r(5));
    let noiseless = NoiseModel::noiseless(&compiled.subdevice);
    let counts = NoisySimulator::new(noiseless).run(&compiled.circuit, 128, RngSeed(8));
    let logical = compiled.logical_counts(&counts);
    // The compiled circuit is approximate (it targets noisy calibration), but
    // the expected outcome must dominate.
    assert!(logical.probability(expected) > 0.6);
}

#[test]
fn multi_type_sets_never_lose_estimated_fidelity_versus_their_members() {
    let device = DeviceModel::sycamore(RngSeed(9));
    let circuit = qv_circuit(3, RngSeed(10));
    let g3 = compile(&circuit, &device, &InstructionSet::g(3));
    for k in 1..=3 {
        let single = compile(&circuit, &device, &InstructionSet::s(k));
        assert!(
            g3.pass_stats.estimated_circuit_fidelity
                >= single.pass_stats.estimated_circuit_fidelity - 1e-6,
            "G3 {} vs S{k} {}",
            g3.pass_stats.estimated_circuit_fidelity,
            single.pass_stats.estimated_circuit_fidelity
        );
    }
}

#[test]
fn native_swap_reduces_two_qubit_count_on_routing_heavy_circuits() {
    // A long-range interaction on a line region forces routing; the native
    // SWAP of G7 must not be worse than G6.
    let device = DeviceModel::sycamore(RngSeed(11));
    let mut circuit = Circuit::new(4);
    circuit.push(Operation::h(0));
    for q in 1..4 {
        circuit.push(Operation::zz(0, q, 0.3));
    }
    circuit.measure_all();
    let g6 = compile(&circuit, &device, &InstructionSet::g(6));
    let g7 = compile(&circuit, &device, &InstructionSet::g(7));
    assert!(g7.two_qubit_gate_count() <= g6.two_qubit_gate_count());
}

#[test]
fn instruction_set_table_is_consistent_with_calibration_model() {
    let model = calibration::CalibrationModel::default();
    for set in InstructionSet::table2() {
        let circuits = model.circuits_for_set(&set, 54);
        assert!(circuits > 0.0);
        if !set.is_continuous() {
            assert!(model.saving_versus_continuous(&set) > 50.0);
        }
    }
}

#[test]
fn compiled_circuits_only_use_gates_from_the_instruction_set() {
    let device = DeviceModel::sycamore(RngSeed(13));
    let circuit = qv_circuit(3, RngSeed(14));
    for set in [
        InstructionSet::s(2),
        InstructionSet::g(2),
        InstructionSet::r(3),
    ] {
        let compiled = compile(&circuit, &device, &set);
        let allowed: Vec<&str> = set.gate_types().iter().map(|g| g.name()).collect();
        for (label, _) in compiled.circuit.two_qubit_counts_by_label() {
            assert!(
                allowed.contains(&label.as_str()),
                "{} emitted {}",
                set.name(),
                label
            );
        }
    }
}
