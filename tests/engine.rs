//! Validation of the parallel batched-shot execution engine (`sim::engine`):
//! determinism across thread counts, agreement with the single-job
//! `NoisySimulator::run` wrapper, and convergence to the exact density-matrix
//! distribution.

use apps::workloads::{qaoa_circuit, qv_circuit};
use circuit::{Circuit, Operation};
use device::DeviceModel;
use proptest::prelude::*;
use qmath::RngSeed;
use sim::{
    DensityMatrix, ExecutionEngine, NoiseModel, NoisySimulator, SeedPolicy, SimJob, SimResult,
};

fn ghz_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Operation::h(0));
    for q in 1..n {
        c.push(Operation::cnot(q - 1, q));
    }
    c.measure_all();
    c
}

fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .sum::<f64>()
        / 2.0
}

fn engine_with(threads: usize) -> ExecutionEngine {
    ExecutionEngine::builder().threads(threads).build().unwrap()
}

fn batch_with(threads: usize, jobs: &[SimJob]) -> Vec<SimResult> {
    engine_with(threads).run_batch(jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline determinism guarantee: for any workload, noise level,
    /// shot budget and seed, `run_batch` produces bit-identical `Counts`
    /// with 1, 2 and 8 worker threads.
    #[test]
    fn run_batch_is_bit_identical_across_thread_counts(
        seed in 0u64..500,
        shots in 1usize..400,
        fid_step in 0usize..3,
        workload in 0usize..2,
    ) {
        let fidelity = [0.9, 0.96, 0.995][fid_step];
        let circuit = match workload {
            0 => qv_circuit(3, RngSeed(seed)),
            _ => qaoa_circuit(3, RngSeed(seed)),
        };
        let noise = NoiseModel::from_device(&DeviceModel::ideal(3, fidelity));
        let jobs = vec![
            SimJob::noisy(circuit.clone(), noise.clone(), shots, RngSeed(seed ^ 0xA5)),
            SimJob::ideal(circuit, shots, RngSeed(seed ^ 0x5A)),
        ];
        let reference = batch_with(1, &jobs);
        for threads in [2usize, 8] {
            let parallel = batch_with(threads, &jobs);
            for (r, p) in reference.iter().zip(parallel.iter()) {
                prop_assert_eq!(&r.counts, &p.counts);
            }
        }
    }

    /// The per-shot seed policy reproduces the single-job wrapper
    /// (`NoisySimulator::run`) bit for bit at any thread count.
    #[test]
    fn per_shot_policy_matches_noisy_simulator_exactly(
        seed in 0u64..500,
        shots in 1usize..300,
    ) {
        let circuit = ghz_circuit(3);
        let noise = NoiseModel::from_device(&DeviceModel::ideal(3, 0.95));
        let wrapper = NoisySimulator::new(noise.clone()).run(&circuit, shots, RngSeed(seed));
        let engine = ExecutionEngine::builder()
            .threads(4)
            .seed_policy(SeedPolicy::PerShot)
            .build()
            .unwrap();
        let batch = engine.run_batch(&[SimJob::noisy(circuit, noise, shots, RngSeed(seed))]);
        prop_assert_eq!(&wrapper, &batch[0].counts);
    }
}

#[test]
fn ghz_engine_agrees_with_noisy_simulator_distribution() {
    // The engine's default per-shard streams differ from the wrapper's
    // per-shot streams, so the histograms are different samples of the same
    // distribution: they must agree statistically.
    let circuit = ghz_circuit(3);
    let mut noise = NoiseModel::from_device(&DeviceModel::ideal(3, 0.95));
    noise.with_readout_error = false;
    let shots = 8000;

    let wrapper = NoisySimulator::new(noise.clone()).run(&circuit, shots, RngSeed(21));
    let engine = engine_with(8).run_batch(&[SimJob::noisy(circuit, noise, shots, RngSeed(21))]);

    let a: Vec<f64> = (0..8).map(|i| wrapper.probability(i)).collect();
    let b: Vec<f64> = (0..8).map(|i| engine[0].counts.probability(i)).collect();
    let tv = total_variation(&a, &b);
    assert!(tv < 0.03, "engine vs wrapper TVD {tv}: {a:?} vs {b:?}");
}

#[test]
fn engine_counts_converge_to_the_density_matrix() {
    // Readout error acts on classical outcomes, not on rho: disable it so the
    // comparison is against the exact channel evolution.
    let circuit = ghz_circuit(3);
    let mut noise = NoiseModel::from_device(&DeviceModel::ideal(3, 0.93));
    noise.with_readout_error = false;

    let exact = DensityMatrix::evolve(&circuit, &noise).probabilities();
    let shots = 8000;
    let result = engine_with(8)
        .run_batch(&[SimJob::noisy(circuit, noise, shots, RngSeed(5))])
        .remove(0);
    let empirical: Vec<f64> = (0..8).map(|i| result.counts.probability(i)).collect();

    let tv = total_variation(&exact, &empirical);
    assert!(
        tv < 0.025,
        "engine vs density TVD {tv}: exact {exact:?}, empirical {empirical:?}"
    );
    assert_eq!(result.counts.total(), shots);
    assert!(result.report.shots_per_sec() > 0.0);
}

#[test]
fn engine_report_reflects_sharding() {
    let circuit = ghz_circuit(2);
    let noise = NoiseModel::from_device(&DeviceModel::ideal(2, 0.97));
    let engine = ExecutionEngine::builder()
        .threads(4)
        .shot_chunk_size(100)
        .build()
        .unwrap();
    let result = engine
        .run_batch(&[SimJob::noisy(circuit, noise, 1000, RngSeed(1))])
        .remove(0);
    assert_eq!(result.report.shots, 1000);
    assert_eq!(result.report.shards, 10);
    assert_eq!(result.report.threads, 4);
    assert!(result.report.precompile > std::time::Duration::ZERO);
    assert_eq!(result.counts.total(), 1000);
}

#[test]
fn batched_jobs_are_independent_of_their_neighbours() {
    // A job's counts must not depend on what else is in the batch.
    let circuit = ghz_circuit(3);
    let noise = NoiseModel::from_device(&DeviceModel::ideal(3, 0.95));
    let job = SimJob::noisy(circuit.clone(), noise.clone(), 200, RngSeed(9));
    let alone = engine_with(4).run_batch(std::slice::from_ref(&job));
    let crowded = engine_with(4).run_batch(&[
        SimJob::ideal(circuit.clone(), 50, RngSeed(1)),
        job,
        SimJob::noisy(circuit, noise, 75, RngSeed(2)),
    ]);
    assert_eq!(alone[0].counts, crowded[1].counts);
}
