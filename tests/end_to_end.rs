//! End-to-end reproduction smoke tests: miniature versions of the paper's
//! headline results, checked as inequalities rather than absolute numbers.

use bench::{compiler_for, evaluate_set, qaoa_suite, qv_suite, BenchCircuit, Scale, SetResult};
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;

use calibration::CalibrationModel;

fn evaluate(
    suite: &[BenchCircuit],
    device: &DeviceModel,
    set: &InstructionSet,
    shots: usize,
    seed: RngSeed,
) -> SetResult {
    let options = Scale::Small.compiler_options();
    let compiler = compiler_for(device, set, &options).expect("valid compiler configuration");
    evaluate_set(suite, &compiler, shots, seed).expect("suite compiles")
}

#[test]
fn multi_type_sets_match_or_beat_single_type_sets_on_average() {
    // Miniature Fig. 9/10: mean estimated fidelity of a multi-type set is at
    // least that of the best corresponding single-type set.
    let device = DeviceModel::sycamore(RngSeed(1));
    let suite = qaoa_suite(3, 3, RngSeed(2));
    let shots = 200;
    let single: Vec<f64> = (1..=4)
        .map(|k| {
            evaluate(&suite, &device, &InstructionSet::s(k), shots, RngSeed(3))
                .mean_estimated_fidelity
        })
        .collect();
    let multi =
        evaluate(&suite, &device, &InstructionSet::g(3), shots, RngSeed(3)).mean_estimated_fidelity;
    let best_single = single.iter().copied().fold(f64::MIN, f64::max);
    assert!(
        multi >= best_single - 1e-6,
        "multi {multi} vs best single {best_single}"
    );
}

#[test]
fn native_swap_set_reduces_instruction_count_like_the_paper() {
    // Miniature of the R5/G7 observation: adding a native SWAP reduces the
    // two-qubit instruction count on connectivity-limited devices.
    let device = DeviceModel::aspen8(RngSeed(4));
    let suite = qv_suite(4, 2, RngSeed(5));
    let r4 = evaluate(&suite, &device, &InstructionSet::r(4), 100, RngSeed(6));
    let r5 = evaluate(&suite, &device, &InstructionSet::r(5), 100, RngSeed(6));
    assert!(
        r5.mean_two_qubit_gates <= r4.mean_two_qubit_gates,
        "R5 {} vs R4 {}",
        r5.mean_two_qubit_gates,
        r4.mean_two_qubit_gates
    );
}

#[test]
fn calibration_saving_is_two_orders_of_magnitude() {
    let model = CalibrationModel::default();
    for set in [InstructionSet::r(5), InstructionSet::g(7)] {
        let saving = model.saving_versus_continuous(&set);
        assert!((60.0..=600.0).contains(&saving), "{}: {saving}", set.name());
    }
}

#[test]
fn reliability_improves_then_saturates_with_more_gate_types() {
    // Miniature Fig. 11b: estimated fidelity is non-decreasing as gate types
    // are added (G1 ⊂ G2 ⊂ ... ⊂ G7 on the same device).
    let device = DeviceModel::sycamore(RngSeed(7));
    let suite = qv_suite(3, 2, RngSeed(8));
    let mut last = 0.0;
    for k in [1usize, 3, 5, 7] {
        let r = evaluate(&suite, &device, &InstructionSet::g(k), 100, RngSeed(9));
        assert!(
            r.mean_estimated_fidelity >= last - 1e-6,
            "G{k} {} < previous {last}",
            r.mean_estimated_fidelity
        );
        last = r.mean_estimated_fidelity;
    }
}
