//! Workspace-level tests of the `compiler::Compiler` service: typed error
//! paths for hostable-but-invalid inputs, cross-call cache reuse, and the
//! batched fan-out.

use apps::workloads::{qaoa_circuit, qv_circuit};
use circuit::Circuit;
use compiler::{CompileError, Compiler, CompilerOptions};
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;
use sim::{NoiseModel, NoisySimulator};

fn quick_options() -> CompilerOptions {
    CompilerOptions::sweep()
}

fn compiler(device: DeviceModel, set: InstructionSet) -> Compiler {
    Compiler::for_device(device)
        .instruction_set(set)
        .options(quick_options())
        .build()
        .expect("valid compiler configuration")
}

#[test]
fn circuit_larger_than_device_returns_region_unavailable() {
    let service = compiler(DeviceModel::ideal(3, 0.99), InstructionSet::s(3));
    let circuit = qv_circuit(6, RngSeed(1));
    match service.compile(&circuit) {
        Err(CompileError::RegionUnavailable {
            requested,
            available,
        }) => {
            assert_eq!(requested, 6);
            assert_eq!(available, 3);
        }
        other => panic!("expected RegionUnavailable, got {other:?}"),
    }
}

#[test]
fn unknown_instruction_set_name_fails_at_build_time() {
    let err = Compiler::for_device(DeviceModel::ideal(3, 0.99))
        .instruction_set_named("S42")
        .build()
        .unwrap_err();
    assert!(matches!(err, CompileError::InvalidInstructionSet(_)));
    assert!(err.to_string().contains("S42"));
}

#[test]
fn compile_errors_are_std_errors() {
    let service = compiler(DeviceModel::ideal(2, 0.99), InstructionSet::s(1));
    let err = service.compile(&qv_circuit(4, RngSeed(2))).unwrap_err();
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.to_string().contains("only 2 qubits"));
}

#[test]
fn second_identical_compile_reports_cache_hits() {
    let service = compiler(DeviceModel::aspen8(RngSeed(3)), InstructionSet::r(2));
    let circuit = qaoa_circuit(3, RngSeed(4));

    let (first, first_report) = service.compile_with_report(&circuit).unwrap();
    assert!(first_report.cache_misses > 0, "cold cache must miss");

    let (second, second_report) = service.compile_with_report(&circuit).unwrap();
    assert_eq!(second_report.cache_misses, 0, "warm cache must not miss");
    assert_eq!(
        second_report.cache_hits, second.pass_stats.input_two_qubit_gates,
        "every operation should be served from the cache"
    );
    assert_eq!(
        first.circuit, second.circuit,
        "cache must not change output"
    );
}

#[test]
fn cache_reuse_spans_different_circuits_with_shared_structure() {
    // Two QAOA instances over the same graph share ZZ terms; compiling the
    // second must hit the decompositions cached by the first wherever the
    // unitary, pair and fidelities coincide.
    let service = compiler(DeviceModel::aspen8(RngSeed(5)), InstructionSet::r(2));
    let a = qaoa_circuit(3, RngSeed(6));
    service.compile(&a).unwrap();
    let hits_before = service.cache().hits();
    service.compile(&a).unwrap();
    assert!(service.cache().hits() > hits_before);
}

#[test]
fn compile_batch_matches_individual_compiles() {
    let batch_service = compiler(DeviceModel::sycamore(RngSeed(7)), InstructionSet::g(2));
    let one_by_one = compiler(DeviceModel::sycamore(RngSeed(7)), InstructionSet::g(2));
    let circuits: Vec<Circuit> = (0..3).map(|i| qv_circuit(3, RngSeed(10 + i))).collect();

    let batched = batch_service.compile_batch(&circuits);
    for (circuit, batched) in circuits.iter().zip(batched.iter()) {
        let single = one_by_one.compile(circuit).unwrap();
        let batched = batched.as_ref().expect("batch member compiles");
        assert_eq!(single.circuit, batched.circuit);
        assert_eq!(single.region, batched.region);
        assert_eq!(single.swap_count, batched.swap_count);
    }
}

#[test]
fn compiled_batch_members_simulate_correctly() {
    // A batched compile must produce artifacts that execute like any other:
    // noiseless execution of a compiled QV circuit reproduces a distribution.
    let service = compiler(DeviceModel::aspen8(RngSeed(8)), InstructionSet::r(2));
    let circuits = vec![qaoa_circuit(3, RngSeed(9)), qaoa_circuit(3, RngSeed(10))];
    for result in service.compile_batch(&circuits) {
        let compiled = result.expect("suite compiles");
        let noiseless = NoiseModel::noiseless(&compiled.subdevice);
        let counts = NoisySimulator::new(noiseless).run(&compiled.circuit, 64, RngSeed(11));
        let logical = compiled.logical_counts(&counts);
        assert_eq!(logical.total(), 64);
    }
}

#[test]
fn sweep_over_instruction_sets_does_not_panic_on_any_table2_set() {
    // The service must never panic across the full Table II sweep (the
    // paper's headline experiment shape), even with a tiny device.
    let device = DeviceModel::aspen8(RngSeed(12));
    let circuit = qv_circuit(2, RngSeed(13));
    for set in InstructionSet::table2() {
        let service = compiler(device.clone(), set);
        let compiled = service.compile(&circuit).expect("2-qubit circuit fits");
        assert!(compiled.two_qubit_gate_count() >= 1);
    }
}
