//! Value-generation strategies.

use std::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from the test RNG.
///
/// Unlike real proptest there is no value tree and no shrinking: `generate`
/// returns a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
