//! Deterministic mini-proptest for the offline workspace build.
//!
//! Supports the subset of proptest the workspace test suites use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `pat in strategy` arguments;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges
//!   and tuples, plus [`collection::vec`] and [`strategy::Just`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! **Determinism policy (ISSUE 2 seed-pinning):** there is no shrinking and
//! no persistence file. Every test function derives its RNG stream from
//! `PROPTEST_RNG_SEED` (default `0x5EED_CAFE`) XOR an FNV-1a hash of the test
//! name, then steps it per case, so a run is bit-for-bit reproducible in CI
//! and any failure message reports the `(seed, case)` pair needed to replay
//! it locally.

pub mod strategy;
pub mod test_runner;

/// Strategies for generating collections (only `vec` is provided).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Number-of-elements specification: a fixed count or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy yielding vectors of `element` with a length drawn
    /// from `size` (a `usize` count or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 == self.size.hi {
                self.size.lo
            } else {
                rng.rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines seeded property tests. See the crate docs for the grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(&config, stringify!($name), |__pt_rng| {
                    let ($($parm,)+) =
                        ($($crate::strategy::Strategy::generate(&($strategy), __pt_rng),)+);
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with the replay seed) instead of panicking at an uninformative site.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
