//! The deterministic case runner behind the [`proptest!`](crate::proptest) macro.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Workspace-wide default RNG seed; override with `PROPTEST_RNG_SEED`.
pub const DEFAULT_RNG_SEED: u64 = 0x5EED_CAFE;

/// Runner configuration. Only `cases` is interpreted; the struct keeps a
/// `..Default::default()`-friendly shape for forward compatibility.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (carries the message for the final panic).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The RNG handed to strategies. Wraps ChaCha8 so case generation is
/// deterministic given `(seed, test name, case index)`.
#[derive(Debug, Clone)]
pub struct TestRng {
    /// The underlying seeded generator.
    pub rng: ChaCha8Rng,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn base_seed() -> u64 {
    match std::env::var("PROPTEST_RNG_SEED") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("PROPTEST_RNG_SEED must be a u64, got {v:?}")),
        Err(_) => DEFAULT_RNG_SEED,
    }
}

/// Runs `f` for each case with a per-case deterministic RNG, panicking with a
/// replayable `(seed, case)` report on the first failure.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, f: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = base_seed();
    let stream = seed ^ fnv1a(test_name.as_bytes());
    for case in 0..config.cases {
        let mut rng = TestRng {
            rng: ChaCha8Rng::seed_from_u64(stream.wrapping_add(case as u64)),
        };
        if let Err(err) = f(&mut rng) {
            panic!(
                "proptest case failed: {err}\n  \
                 test = {test_name}, case = {case}/{}, PROPTEST_RNG_SEED = {seed}",
                config.cases
            );
        }
    }
}
