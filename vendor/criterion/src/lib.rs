//! Minimal criterion-compatible benchmark harness for the offline build.
//!
//! Implements the surface the `bench` crate's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, plus the `criterion_group!` /
//! `criterion_main!` macros. Timing is a plain wall-clock mean over the
//! configured sample count, printed one line per benchmark; there are no
//! statistics, plots or baselines.
//!
//! Like real criterion, `-- --test` (forwarded by `cargo bench`) switches to
//! smoke mode: every routine runs exactly once so CI can verify the bench
//! kernels still execute without paying measurement time.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` `samples` times and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples as u64;
    }
}

fn report(group: &str, id: &str, bencher: &Bencher) {
    let per_iter = if bencher.iterations == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / bencher.iterations as u32
    };
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench: {name:<48} {per_iter:>12.2?}/iter ({} iters)",
        bencher.iterations
    );
}

/// A named collection of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many times each routine runs per measurement (ignored in
    /// `--test` smoke mode, which pins one iteration).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        if !self.criterion.test_mode {
            self.samples = samples;
        }
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher);
        report(&self.name, &id.id, &bencher);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.samples,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        routine(&mut bencher, input);
        report(&self.name, &id.id, &bencher);
        self
    }

    /// Ends the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    default_samples: usize,
    test_mode: bool,
}

impl Criterion {
    /// Applies command-line configuration. `--test` (criterion's smoke-test
    /// flag, reachable via `cargo bench -- --test`) caps every benchmark at a
    /// single iteration; all other forwarded flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.default_samples = 10;
        self.test_mode = std::env::args().any(|a| a == "--test");
        if self.test_mode {
            println!("criterion shim: --test mode, one iteration per benchmark");
        }
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.test_mode {
            1
        } else {
            self.default_samples.max(1)
        };
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.test_mode {
            1
        } else {
            self.default_samples.max(1)
        };
        let mut group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            samples,
        };
        group.bench_function(id, routine);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
