//! No-op `Serialize` / `Deserialize` derives for the vendored serde shim.
//!
//! The workspace only uses serde derives as forward-looking annotations; no
//! code path serializes through serde yet (reports are plain text/CSV). The
//! derives therefore expand to nothing, keeping the offline build free of
//! `syn`/`quote`. Swapping in the real `serde` crate requires no source
//! changes at any call site.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is a marker trait in the shim.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is a marker trait in the shim.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
