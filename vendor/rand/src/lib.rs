//! Minimal `rand` facade for the offline workspace build.
//!
//! Implements the exact surface the workspace uses: [`RngCore`], the [`Rng`]
//! extension trait (`gen_range` over half-open/inclusive numeric ranges and
//! `gen_bool`), [`SeedableRng`] with the SplitMix64-based `seed_from_u64`,
//! and [`seq::SliceRandom::shuffle`]. See `vendor/README.md` for caveats.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: a source of uniform `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next uniform `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A deterministic generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 the
    /// way upstream `rand` does, so small seeds still fill the whole state.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let x = self.start + unit_f64(rng) * (self.end - self.start);
        // `start + u*(end-start)` can round up to exactly `end` for u near 1;
        // the range is half-open, so clamp back inside it.
        if x >= self.end {
            self.end.next_down()
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive numeric range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice sampling helpers (`SliceRandom`), mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` if empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }
    }

    // Keep the parent-trait import "used" even when only `shuffle` is called.
    const _: fn(&mut dyn RngCore) = |_| {};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn f64_range_never_returns_the_exclusive_bound() {
        // A source pinned at u64::MAX drives unit_f64 to its maximum
        // (2^53-1)/2^53, where `lo + u*(hi-lo)` rounds up to exactly `hi`
        // for ranges like 0.70..0.97.
        struct Max;
        impl RngCore for Max {
            fn next_u32(&mut self) -> u32 {
                u32::MAX
            }
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = Max;
        for (lo, hi) in [(0.70, 0.97), (0.81, 0.97), (0.0, 1.0), (-1.0, 1.0)] {
            let x: f64 = rng.gen_range(lo..hi);
            assert!(x < hi, "gen_range({lo}..{hi}) returned {x}");
            assert!(x >= lo);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<usize> = (0..32).collect();
        let mut rng = Counter(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
