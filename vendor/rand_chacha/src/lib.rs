//! `ChaCha8Rng` for the offline workspace build.
//!
//! A genuine ChaCha8 keystream generator (4 double-rounds over the standard
//! 16-word state), deterministic per seed, implementing the vendored `rand`
//! traits. Seeded streams are stable across builds of this shim but are not
//! guaranteed bit-compatible with the upstream `rand_chacha` crate.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Input state: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current 64-byte output block, as 16 little-endian words.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "block exhausted".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "streams should be decorrelated, {same}/64 collide"
        );
    }

    #[test]
    fn keystream_is_not_trivially_biased() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let ones: u32 = (0..256).map(|_| rng.next_u64().count_ones()).sum();
        // 256 * 64 / 2 = 8192 expected; allow a generous window.
        assert!((7600..8800).contains(&ones), "popcount = {ones}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
