//! `parking_lot`-shaped locks for the offline build.
//!
//! Thin wrappers over `std::sync` that match the parking_lot API the
//! workspace uses: `lock()` / `read()` / `write()` return guards directly
//! (no `Result`), and a poisoned lock is transparently recovered rather than
//! propagated, which is parking_lot's behaviour (it has no poisoning).

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now (`None` when held),
    /// matching parking_lot's `Option`-returning signature.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the rwlock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
