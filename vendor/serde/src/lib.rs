//! Minimal serde facade for the offline workspace build.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and the
//! derive-macro namespaces so that `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The derives expand
//! to nothing and the traits carry no methods; see `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
