//! Quickstart: decompose an application operation with NuOp, compare gate
//! types, and compile + simulate a small circuit end to end.
//!
//! Run with `cargo run --release -p bench --example quickstart`.

use circuit::{Circuit, Operation};
use compiler::{Compiler, CompilerOptions};
use device::DeviceModel;
use gates::{standard, GateType, InstructionSet};
use nuop_core::{decompose_fixed, DecomposeConfig};
use qmath::RngSeed;
use sim::{IdealSimulator, NoiseModel, NoisySimulator};

fn main() {
    // 1. Decompose a single application unitary into a hardware gate type.
    let target = standard::zz_interaction(0.3); // a QAOA cost term
    let decomposition = decompose_fixed(&target, &GateType::cz(), &DecomposeConfig::default());
    println!(
        "ZZ(0.3) needs {} CZ gates (decomposition fidelity {:.6})",
        decomposition.layers, decomposition.decomposition_fidelity
    );

    // 2. Compare hardware gate types for the same operation.
    for gate in [GateType::cz(), GateType::sqrt_iswap(), GateType::syc()] {
        let d = decompose_fixed(&target, &gate, &DecomposeConfig::default());
        println!("  with {:<12} -> {} gates", gate.name(), d.layers);
    }

    // 3. Build a reusable compiler for Rigetti Aspen-8 with the R2
    //    instruction set, compile a small circuit, and simulate it with
    //    realistic noise. The compiler can be reused for further circuits —
    //    its decomposition cache persists across calls.
    let mut circuit = Circuit::new(3);
    circuit.push(Operation::h(0));
    circuit.push(Operation::zz(0, 1, 0.3));
    circuit.push(Operation::zz(1, 2, 0.3));
    circuit.push(Operation::rx(0, 0.7));
    circuit.push(Operation::rx(1, 0.7));
    circuit.push(Operation::rx(2, 0.7));
    circuit.measure_all();

    let compiler = Compiler::for_device(DeviceModel::aspen8(RngSeed(1)))
        .instruction_set(InstructionSet::r(2))
        .options(CompilerOptions::default())
        .build()
        .expect("valid compiler configuration");
    let compiled = compiler.compile(&circuit).expect("circuit fits Aspen-8");
    println!(
        "\nCompiled onto Aspen-8 qubits {:?}: {} two-qubit gates ({} routing SWAPs before decomposition)",
        compiled.region,
        compiled.two_qubit_gate_count(),
        compiled.swap_count
    );
    println!(
        "Gate-type histogram: {:?}",
        compiled.pass_stats.gate_type_histogram
    );

    // Compiling the same circuit again is served from the shared cache.
    let (_, report) = compiler
        .compile_with_report(&circuit)
        .expect("circuit fits Aspen-8");
    println!(
        "Recompile: {} cache hits, {} misses, {:?} total",
        report.cache_hits,
        report.cache_misses,
        report.total_duration()
    );

    let noise = NoiseModel::from_device(&compiled.subdevice);
    let counts = NoisySimulator::new(noise).run(&compiled.circuit, 2000, RngSeed(2));
    let logical = compiled.logical_counts(&counts);
    let ideal = IdealSimulator::probabilities(&circuit.without_measurements());
    let xed = apps::cross_entropy_difference(&logical, &ideal);
    println!("Noisy execution cross-entropy difference: {xed:.3} (1 = ideal, 0 = useless)");
}
