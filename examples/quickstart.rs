//! Quickstart: decompose an application operation with NuOp, compare gate
//! types, and compile + simulate a small circuit end to end.
//!
//! Run with `cargo run --release -p bench --example quickstart`.

use circuit::{Circuit, Operation};
use compiler::{compile, CompilerOptions};
use device::DeviceModel;
use gates::{standard, GateType, InstructionSet};
use nuop_core::{decompose_fixed, DecomposeConfig};
use qmath::RngSeed;
use sim::{IdealSimulator, NoiseModel, NoisySimulator};

fn main() {
    // 1. Decompose a single application unitary into a hardware gate type.
    let target = standard::zz_interaction(0.3); // a QAOA cost term
    let decomposition = decompose_fixed(&target, &GateType::cz(), &DecomposeConfig::default());
    println!(
        "ZZ(0.3) needs {} CZ gates (decomposition fidelity {:.6})",
        decomposition.layers, decomposition.decomposition_fidelity
    );

    // 2. Compare hardware gate types for the same operation.
    for gate in [GateType::cz(), GateType::sqrt_iswap(), GateType::syc()] {
        let d = decompose_fixed(&target, &gate, &DecomposeConfig::default());
        println!("  with {:<12} -> {} gates", gate.name(), d.layers);
    }

    // 3. Compile a small circuit for Rigetti Aspen-8 with the R2 instruction
    //    set and simulate it with realistic noise.
    let mut circuit = Circuit::new(3);
    circuit.push(Operation::h(0));
    circuit.push(Operation::zz(0, 1, 0.3));
    circuit.push(Operation::zz(1, 2, 0.3));
    circuit.push(Operation::rx(0, 0.7));
    circuit.push(Operation::rx(1, 0.7));
    circuit.push(Operation::rx(2, 0.7));
    circuit.measure_all();

    let device = DeviceModel::aspen8(RngSeed(1));
    let compiled = compile(
        &circuit,
        &device,
        &InstructionSet::r(2),
        &CompilerOptions::default(),
    );
    println!(
        "\nCompiled onto Aspen-8 qubits {:?}: {} two-qubit gates ({} routing SWAPs before decomposition)",
        compiled.region,
        compiled.two_qubit_gate_count(),
        compiled.swap_count
    );
    println!(
        "Gate-type histogram: {:?}",
        compiled.pass_stats.gate_type_histogram
    );

    let noise = NoiseModel::from_device(&compiled.subdevice);
    let counts = NoisySimulator::new(noise).run(&compiled.circuit, 2000, RngSeed(2));
    let logical = compiled.logical_counts(&counts);
    let ideal = IdealSimulator::probabilities(&circuit.without_measurements());
    let xed = apps::cross_entropy_difference(&logical, &ideal);
    println!("Noisy execution cross-entropy difference: {xed:.3} (1 = ideal, 0 = useless)");
}
