//! A miniature version of the paper's headline study: sweep instruction sets
//! on both devices, report reliability, instruction counts and calibration
//! cost, and point out the 4-8 gate-type sweet spot.
//!
//! Run with `cargo run --release -p bench --example isa_design_study`.

use bench::{compiler_for, evaluate_set, qaoa_suite, qv_suite, Metric, Scale};
use calibration::CalibrationModel;
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;

fn main() {
    let scale = Scale::Small;
    let circuits = 3;
    let shots = 300;
    let seed = RngSeed(2021);
    let model = CalibrationModel::default();
    let options = scale.compiler_options();

    let sycamore = DeviceModel::sycamore(seed.child(0));
    let qv = qv_suite(3, circuits, seed.child(1));
    let qaoa = qaoa_suite(3, circuits, seed.child(2));

    println!("Instruction-set design study (Sycamore model, small scale)\n");
    println!(
        "{:<10} {:>7} {:>10} {:>10} {:>10} {:>14} {:>12}",
        "set", "types", "QV HOP", "QAOA XED", "2Q gates", "cal. circuits", "cal. hours"
    );
    let sets: Vec<InstructionSet> = vec![
        InstructionSet::s(1),
        InstructionSet::g(1),
        InstructionSet::g(3),
        InstructionSet::g(5),
        InstructionSet::g(7),
        InstructionSet::full_fsim(),
    ];
    for set in &sets {
        // One compiler per set, reused across both suites (shared cache).
        let compiler =
            compiler_for(&sycamore, set, &options).expect("valid compiler configuration");
        let rqv = evaluate_set(&qv, &compiler, shots, seed.child(3)).expect("suite compiles");
        let rqa = evaluate_set(&qaoa, &compiler, shots, seed.child(4)).expect("suite compiles");
        let types = set
            .num_gate_types()
            .map_or_else(|| "inf".to_string(), |n| n.to_string());
        println!(
            "{:<10} {:>7} {:>10.3} {:>10.3} {:>10.1} {:>14.2e} {:>12.1}",
            set.name(),
            types,
            rqv.mean_metric,
            rqa.mean_metric,
            rqv.mean_two_qubit_gates,
            model.circuits_for_set(set, 54),
            model.hours_for_set(set),
        );
    }
    let saving = model.saving_versus_continuous(&InstructionSet::g(7));
    println!(
        "\nG7 (8 gate types) keeps reliability within reach of FullfSim while needing\n\
         {saving:.0}x fewer calibration circuits -- the paper's 4-8 type sweet spot."
    );
    let _ = Metric::Hop;
}
