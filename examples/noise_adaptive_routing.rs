//! Demonstrates noise adaptivity across gate types (paper Fig. 3 + Fig. 5):
//! the same program compiled onto different Aspen-8 regions picks different
//! hardware gate types, following the per-edge calibration.
//!
//! Run with `cargo run --release -p bench --example noise_adaptive_routing`.

use apps::workloads::qv_circuit;
use compiler::{compile, CompilerOptions};
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;

fn main() {
    let device = DeviceModel::aspen8(RngSeed(1));
    let circuit = qv_circuit(3, RngSeed(7));
    let options = CompilerOptions::sweep();

    println!("Noise-adaptive gate-type selection on Aspen-8 (instruction set R2)\n");
    // Compile on the automatically selected (best) region, then on a
    // deliberately different part of the chip, and compare the chosen types.
    let best = compile(&circuit, &device, &InstructionSet::r(2), &options);
    println!(
        "best region {:?}: histogram {:?}, estimated fidelity {:.3}",
        best.region,
        best.pass_stats.gate_type_histogram,
        best.pass_stats.estimated_circuit_fidelity
    );

    for region in [[8usize, 9, 10], [16, 17, 18], [4, 5, 6]] {
        let sub = device.subdevice(&region);
        let routed = compiler::route(&circuit, &sub, &compiler::initial_mapping(&circuit, &sub));
        let pass = nuop_core::NuOpPass::new(InstructionSet::r(2), options.decompose.clone());
        let (compiled, stats) = pass.run(&routed.circuit, &sub);
        println!(
            "region {:?}: histogram {:?}, estimated fidelity {:.3}, {} two-qubit gates",
            region,
            stats.gate_type_histogram,
            stats.estimated_circuit_fidelity,
            compiled.two_qubit_gate_count()
        );
    }
    println!("\nDifferent regions favour different gate types because the calibrated");
    println!("fidelities vary edge to edge -- the compiler exploits whichever type is");
    println!("best locally, which is the paper's argument for exposing several types.");
}
