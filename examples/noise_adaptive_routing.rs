//! Demonstrates noise adaptivity across gate types (paper Fig. 3 + Fig. 5):
//! the same program compiled onto different Aspen-8 regions picks different
//! hardware gate types, following the per-edge calibration.
//!
//! Run with `cargo run --release -p bench --example noise_adaptive_routing`.

use apps::workloads::qv_circuit;
use compiler::{Compiler, CompilerOptions};
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;

fn main() {
    let device = DeviceModel::aspen8(RngSeed(1));
    let circuit = qv_circuit(3, RngSeed(7));
    let options = CompilerOptions::sweep();

    println!("Noise-adaptive gate-type selection on Aspen-8 (instruction set R2)\n");
    // Compile on the automatically selected (best) region, then on
    // deliberately different parts of the chip, and compare the chosen types.
    let compiler = Compiler::for_device(device.clone())
        .instruction_set(InstructionSet::r(2))
        .options(options.clone())
        .build()
        .expect("valid compiler configuration");
    let best = compiler.compile(&circuit).expect("circuit fits Aspen-8");
    println!(
        "best region {:?}: histogram {:?}, estimated fidelity {:.3}",
        best.region,
        best.pass_stats.gate_type_histogram,
        best.pass_stats.estimated_circuit_fidelity
    );

    for region in [[8usize, 9, 10], [16, 17, 18], [4, 5, 6]] {
        // Pin the region by compiling against the carved-out subdevice; each
        // compiler still reads that region's own calibration data.
        let sub_compiler = Compiler::for_device(device.subdevice(&region))
            .instruction_set(InstructionSet::r(2))
            .options(options.clone())
            .build()
            .expect("valid compiler configuration");
        let compiled = sub_compiler
            .compile(&circuit)
            .expect("region hosts circuit");
        println!(
            "region {:?}: histogram {:?}, estimated fidelity {:.3}, {} two-qubit gates",
            region,
            compiled.pass_stats.gate_type_histogram,
            compiled.pass_stats.estimated_circuit_fidelity,
            compiled.circuit.two_qubit_gate_count()
        );
    }
    println!("\nDifferent regions favour different gate types because the calibrated");
    println!("fidelities vary edge to edge -- the compiler exploits whichever type is");
    println!("best locally, which is the paper's argument for exposing several types.");
}
