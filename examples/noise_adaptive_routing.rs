//! Demonstrates noise adaptivity across gate types (paper Fig. 3 + Fig. 5):
//! the same program compiled onto different Aspen-8 regions picks different
//! hardware gate types, following the per-edge calibration — then every
//! compiled variant is *executed* in one batch on the parallel
//! [`sim::ExecutionEngine`] to show the reliability gap directly.
//!
//! Run with `cargo run --release -p bench --example noise_adaptive_routing`.

use apps::heavy_output_probability;
use apps::workloads::qv_circuit;
use compiler::{CompiledCircuit, Compiler, CompilerOptions};
use device::DeviceModel;
use gates::InstructionSet;
use qmath::RngSeed;
use sim::{ExecutionEngine, IdealSimulator, NoiseModel, SimJob};

fn main() {
    let device = DeviceModel::aspen8(RngSeed(1));
    let circuit = qv_circuit(3, RngSeed(7));
    let options = CompilerOptions::sweep();

    println!("Noise-adaptive gate-type selection on Aspen-8 (instruction set R2)\n");
    // Compile on the automatically selected (best) region, then on
    // deliberately different parts of the chip, and compare the chosen types.
    let compiler = Compiler::for_device(device.clone())
        .instruction_set(InstructionSet::r(2))
        .options(options.clone())
        .build()
        .expect("valid compiler configuration");
    let best = compiler.compile(&circuit).expect("circuit fits Aspen-8");
    println!(
        "best region {:?}: histogram {:?}, estimated fidelity {:.3}",
        best.region,
        best.pass_stats.gate_type_histogram,
        best.pass_stats.estimated_circuit_fidelity
    );

    let mut labels = vec![format!("best {:?}", best.region)];
    let mut variants: Vec<CompiledCircuit> = vec![best];
    for region in [[8usize, 9, 10], [16, 17, 18], [4, 5, 6]] {
        // Pin the region by compiling against the carved-out subdevice; each
        // compiler still reads that region's own calibration data.
        let sub_compiler = Compiler::for_device(device.subdevice(&region))
            .instruction_set(InstructionSet::r(2))
            .options(options.clone())
            .build()
            .expect("valid compiler configuration");
        let compiled = sub_compiler
            .compile(&circuit)
            .expect("region hosts circuit");
        println!(
            "region {:?}: histogram {:?}, estimated fidelity {:.3}, {} two-qubit gates",
            region,
            compiled.pass_stats.gate_type_histogram,
            compiled.pass_stats.estimated_circuit_fidelity,
            compiled.circuit.two_qubit_gate_count()
        );
        labels.push(format!("region {region:?}"));
        variants.push(compiled);
    }

    // Execute every compiled variant as one batch: each job pairs the
    // physical circuit with its own region's calibrated noise; the engine
    // lowers each circuit's Kraus channels once and shards the shots across
    // worker threads (deterministic for a fixed seed, any thread count).
    let shots = 2000;
    let jobs: Vec<SimJob> = variants
        .iter()
        .enumerate()
        .map(|(i, compiled)| {
            SimJob::noisy(
                compiled.circuit.clone(),
                NoiseModel::from_device(&compiled.subdevice),
                shots,
                RngSeed(0xAD).child(i as u64),
            )
        })
        .collect();
    let engine = ExecutionEngine::new();
    let results = engine.run_batch(&jobs);

    println!(
        "\nMeasured reliability ({shots} shots each, {} threads):",
        engine.threads()
    );
    let ideal = IdealSimulator::probabilities(&circuit.without_measurements());
    for ((label, compiled), result) in labels.iter().zip(&variants).zip(&results) {
        let logical = compiled.logical_counts(&result.counts);
        println!(
            "  {label:<22} HOP {:.3}  ({:.0} shots/s)",
            heavy_output_probability(&logical, &ideal),
            result.report.shots_per_sec()
        );
    }
    println!("\nDifferent regions favour different gate types because the calibrated");
    println!("fidelities vary edge to edge -- the compiler exploits whichever type is");
    println!("best locally, which is the paper's argument for exposing several types.");
    println!("The measured HOP tracks the compiler's estimated fidelity ordering.");
}
