//! A gallery of NuOp decompositions (paper Fig. 2 and Fig. 8 in miniature):
//! how many gates each hardware type needs for each kind of application
//! unitary, and what the emitted circuits look like.
//!
//! Run with `cargo run --release -p bench --example decomposition_gallery`.

use gates::{standard, GateType};
use nuop_core::{decompose_fixed, DecomposeConfig};
use qmath::{haar_random_su4, Mat4, RngSeed};

fn main() {
    let cfg = DecomposeConfig::default();
    let mut rng = RngSeed(42).rng();

    let targets: Vec<(&str, Mat4)> = vec![
        ("QV / random SU(4)", haar_random_su4(&mut rng)),
        ("QAOA ZZ(0.25)", standard::zz_interaction(0.25)),
        (
            "QFT CZ(pi/4)",
            standard::cphase(std::f64::consts::FRAC_PI_4),
        ),
        (
            "FH hopping XX+YY(0.5)",
            standard::xx_plus_yy_interaction(0.5),
        ),
        ("SWAP", standard::swap()),
        ("CNOT", standard::cnot()),
    ];
    let gate_types = [
        GateType::cz(),
        GateType::sqrt_iswap(),
        GateType::syc(),
        GateType::iswap(),
        GateType::s7(),
        GateType::swap(),
    ];

    println!(
        "{:<22} gates needed per hardware type",
        "application unitary"
    );
    print!("{:<22} ", "");
    for g in &gate_types {
        print!("{:>14}", g.name());
    }
    println!();
    for (name, target) in &targets {
        print!("{name:<22} ");
        for gate in &gate_types {
            let d = decompose_fixed(target, gate, &cfg);
            let marker = if d.decomposition_fidelity > cfg.fidelity_threshold {
                ""
            } else {
                "*"
            };
            print!("{:>14}", format!("{}{}", d.layers, marker));
        }
        println!();
    }
    println!("(* = best effort below the exact-decomposition threshold)");

    // Show one full circuit.
    let d = decompose_fixed(&standard::swap(), &GateType::cz(), &cfg);
    println!("\nSWAP via CZ ({} gates):", d.layers);
    for op in d.to_operations(0, 1) {
        println!("  {op}");
    }
}
